package autograd

import (
	"math"

	"aibench/internal/tensor"
)

// SoftmaxRows applies softmax to each row of a 2-D Value.
func SoftmaxRows(a *Value) *Value {
	out := tensor.SoftmaxRows(a.Data)
	return newNode("softmax", out, func(g *tensor.Tensor) {
		rows, cols := out.Dim(0), out.Dim(1)
		ga := tensor.New(rows, cols)
		for r := 0; r < rows; r++ {
			base := r * cols
			dot := 0.0
			for c := 0; c < cols; c++ {
				dot += g.Data[base+c] * out.Data[base+c]
			}
			for c := 0; c < cols; c++ {
				ga.Data[base+c] = out.Data[base+c] * (g.Data[base+c] - dot)
			}
		}
		a.accumGrad(ga)
	}, a)
}

// BatchNorm2D applies training-mode batch normalization to an NCHW Value
// with per-channel scale gamma and shift beta. It returns the normalized
// output and the batch statistics (mean, variance) so the caller can
// update running averages.
func BatchNorm2D(x, gamma, beta *Value, eps float64) (out *Value, batchMean, batchVar *tensor.Tensor) {
	n, c, h, w := x.Data.Dim(0), x.Data.Dim(1), x.Data.Dim(2), x.Data.Dim(3)
	plane := h * w
	m := float64(n * plane)
	mean := tensor.New(c)
	variance := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		s := 0.0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			for k := 0; k < plane; k++ {
				s += x.Data.Data[base+k]
			}
		}
		mu := s / m
		mean.Data[ch] = mu
		v := 0.0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			for k := 0; k < plane; k++ {
				d := x.Data.Data[base+k] - mu
				v += d * d
			}
		}
		variance.Data[ch] = v / m
	}
	invStd := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		invStd.Data[ch] = 1 / math.Sqrt(variance.Data[ch]+eps)
	}
	xhat := tensor.New(x.Data.Shape()...)
	o := tensor.New(x.Data.Shape()...)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * plane
			mu, is := mean.Data[ch], invStd.Data[ch]
			ga, be := gamma.Data.Data[ch], beta.Data.Data[ch]
			for k := 0; k < plane; k++ {
				xh := (x.Data.Data[base+k] - mu) * is
				xhat.Data[base+k] = xh
				o.Data[base+k] = ga*xh + be
			}
		}
	}
	node := newNode("batchnorm", o, nil, x, gamma, beta)
	node.back = func(g *tensor.Tensor) {
		dgamma := tensor.New(c)
		dbeta := tensor.New(c)
		sumDy := tensor.New(c)
		sumDyXhat := tensor.New(c)
		for img := 0; img < n; img++ {
			for ch := 0; ch < c; ch++ {
				base := (img*c + ch) * plane
				for k := 0; k < plane; k++ {
					gy := g.Data[base+k]
					sumDy.Data[ch] += gy
					sumDyXhat.Data[ch] += gy * xhat.Data[base+k]
				}
			}
		}
		copy(dbeta.Data, sumDy.Data)
		copy(dgamma.Data, sumDyXhat.Data)
		gamma.accumGrad(dgamma)
		beta.accumGrad(dbeta)
		if x.requiresGrad {
			gx := tensor.New(x.Data.Shape()...)
			for img := 0; img < n; img++ {
				for ch := 0; ch < c; ch++ {
					base := (img*c + ch) * plane
					ga, is := gamma.Data.Data[ch], invStd.Data[ch]
					sDy, sDyX := sumDy.Data[ch], sumDyXhat.Data[ch]
					for k := 0; k < plane; k++ {
						gy := g.Data[base+k]
						gx.Data[base+k] = ga * is / m * (m*gy - sDy - xhat.Data[base+k]*sDyX)
					}
				}
			}
			x.accumGrad(gx)
		}
	}
	return node, mean, variance
}

// BatchNorm2DInference normalizes with fixed (running) statistics; it is a
// purely element-wise affine transform.
func BatchNorm2DInference(x *Value, gamma, beta *Value, runMean, runVar *tensor.Tensor, eps float64) *Value {
	n, c, h, w := x.Data.Dim(0), x.Data.Dim(1), x.Data.Dim(2), x.Data.Dim(3)
	plane := h * w
	o := tensor.New(x.Data.Shape()...)
	scale := tensor.New(c)
	for ch := 0; ch < c; ch++ {
		scale.Data[ch] = gamma.Data.Data[ch] / math.Sqrt(runVar.Data[ch]+eps)
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * plane
			sc, mu, be := scale.Data[ch], runMean.Data[ch], beta.Data.Data[ch]
			for k := 0; k < plane; k++ {
				o.Data[base+k] = sc*(x.Data.Data[base+k]-mu) + be
			}
		}
	}
	return newNode("batchnorm_inf", o, func(g *tensor.Tensor) {
		if x.requiresGrad {
			gx := tensor.New(x.Data.Shape()...)
			for img := 0; img < n; img++ {
				for ch := 0; ch < c; ch++ {
					base := (img*c + ch) * plane
					sc := scale.Data[ch]
					for k := 0; k < plane; k++ {
						gx.Data[base+k] = sc * g.Data[base+k]
					}
				}
			}
			x.accumGrad(gx)
		}
	}, x)
}

// LayerNorm normalizes each row of a 2-D Value with learnable per-column
// gain and bias, as used by the Transformer workloads.
func LayerNorm(x, gamma, beta *Value, eps float64) *Value {
	rows, cols := x.Data.Dim(0), x.Data.Dim(1)
	d := float64(cols)
	xhat := tensor.New(rows, cols)
	invStd := make([]float64, rows)
	o := tensor.New(rows, cols)
	for r := 0; r < rows; r++ {
		base := r * cols
		mu := 0.0
		for c := 0; c < cols; c++ {
			mu += x.Data.Data[base+c]
		}
		mu /= d
		v := 0.0
		for c := 0; c < cols; c++ {
			dd := x.Data.Data[base+c] - mu
			v += dd * dd
		}
		v /= d
		is := 1 / math.Sqrt(v+eps)
		invStd[r] = is
		for c := 0; c < cols; c++ {
			xh := (x.Data.Data[base+c] - mu) * is
			xhat.Data[base+c] = xh
			o.Data[base+c] = gamma.Data.Data[c]*xh + beta.Data.Data[c]
		}
	}
	return newNode("layernorm", o, func(g *tensor.Tensor) {
		dgamma := tensor.New(cols)
		dbeta := tensor.New(cols)
		for r := 0; r < rows; r++ {
			base := r * cols
			for c := 0; c < cols; c++ {
				dgamma.Data[c] += g.Data[base+c] * xhat.Data[base+c]
				dbeta.Data[c] += g.Data[base+c]
			}
		}
		gamma.accumGrad(dgamma)
		beta.accumGrad(dbeta)
		if x.requiresGrad {
			gx := tensor.New(rows, cols)
			for r := 0; r < rows; r++ {
				base := r * cols
				sDy, sDyX := 0.0, 0.0
				for c := 0; c < cols; c++ {
					gy := g.Data[base+c] * gamma.Data.Data[c]
					sDy += gy
					sDyX += gy * xhat.Data[base+c]
				}
				is := invStd[r]
				for c := 0; c < cols; c++ {
					gy := g.Data[base+c] * gamma.Data.Data[c]
					gx.Data[base+c] = is / d * (d*gy - sDy - xhat.Data[base+c]*sDyX)
				}
			}
			x.accumGrad(gx)
		}
	}, x, gamma, beta)
}
