package autograd

import (
	"fmt"
	"math"

	"aibench/internal/tensor"
)

// AffineGrid generates a sampling grid from per-sample 2×3 affine
// transforms theta (shape [N,6], row-major [a b tx; c d ty]). The output
// has shape [N, outH*outW, 2] with normalized coordinates in [-1,1],
// matching the Spatial Transformer Networks formulation.
func AffineGrid(theta *Value, outH, outW int) *Value {
	if theta.Data.Rank() != 2 || theta.Data.Dim(1) != 6 {
		panic(fmt.Sprintf("autograd: AffineGrid wants [N,6] theta, got %v", theta.Data.Shape()))
	}
	n := theta.Data.Dim(0)
	hw := outH * outW
	out := tensor.New(n, hw, 2)
	// Base (target) coordinates, normalized to [-1,1].
	xs := make([]float64, outW)
	ys := make([]float64, outH)
	for i := range xs {
		if outW > 1 {
			xs[i] = -1 + 2*float64(i)/float64(outW-1)
		}
	}
	for i := range ys {
		if outH > 1 {
			ys[i] = -1 + 2*float64(i)/float64(outH-1)
		}
	}
	for img := 0; img < n; img++ {
		t := theta.Data.Data[img*6 : (img+1)*6]
		pi := 0
		for y := 0; y < outH; y++ {
			for x := 0; x < outW; x++ {
				gx := t[0]*xs[x] + t[1]*ys[y] + t[2]
				gy := t[3]*xs[x] + t[4]*ys[y] + t[5]
				out.Data[(img*hw+pi)*2] = gx
				out.Data[(img*hw+pi)*2+1] = gy
				pi++
			}
		}
	}
	return newNode("affinegrid", out, func(g *tensor.Tensor) {
		gt := tensor.New(n, 6)
		for img := 0; img < n; img++ {
			pi := 0
			for y := 0; y < outH; y++ {
				for x := 0; x < outW; x++ {
					ggx := g.Data[(img*hw+pi)*2]
					ggy := g.Data[(img*hw+pi)*2+1]
					gt.Data[img*6+0] += ggx * xs[x]
					gt.Data[img*6+1] += ggx * ys[y]
					gt.Data[img*6+2] += ggx
					gt.Data[img*6+3] += ggy * xs[x]
					gt.Data[img*6+4] += ggy * ys[y]
					gt.Data[img*6+5] += ggy
					pi++
				}
			}
		}
		theta.accumGrad(gt)
	}, theta)
}

// GridSample bilinearly samples the NCHW input at the normalized grid
// coordinates (shape [N, outH*outW, 2], values in [-1,1]; out-of-range
// samples read as zero). Gradients flow to both the input and the grid,
// which is what lets the Spatial Transformer learn its localization net.
func GridSample(input, grid *Value, outH, outW int) *Value {
	n, c, h, w := input.Data.Dim(0), input.Data.Dim(1), input.Data.Dim(2), input.Data.Dim(3)
	hw := outH * outW
	if grid.Data.Rank() != 3 || grid.Data.Dim(0) != n || grid.Data.Dim(1) != hw || grid.Data.Dim(2) != 2 {
		panic(fmt.Sprintf("autograd: GridSample grid shape %v incompatible with [%d,%d,2]", grid.Data.Shape(), n, hw))
	}
	out := tensor.New(n, c, outH, outW)
	// unnormalize maps [-1,1] to pixel coordinates (align_corners=true).
	unx := func(v float64) float64 { return (v + 1) / 2 * float64(w-1) }
	uny := func(v float64) float64 { return (v + 1) / 2 * float64(h-1) }
	sample := func(img, ch int, ix, iy int) float64 {
		if ix < 0 || ix >= w || iy < 0 || iy >= h {
			return 0
		}
		return input.Data.Data[((img*c+ch)*h+iy)*w+ix]
	}
	for img := 0; img < n; img++ {
		for pi := 0; pi < hw; pi++ {
			gx := unx(grid.Data.Data[(img*hw+pi)*2])
			gy := uny(grid.Data.Data[(img*hw+pi)*2+1])
			x0, y0 := int(math.Floor(gx)), int(math.Floor(gy))
			fx, fy := gx-float64(x0), gy-float64(y0)
			for ch := 0; ch < c; ch++ {
				v := sample(img, ch, x0, y0)*(1-fx)*(1-fy) +
					sample(img, ch, x0+1, y0)*fx*(1-fy) +
					sample(img, ch, x0, y0+1)*(1-fx)*fy +
					sample(img, ch, x0+1, y0+1)*fx*fy
				out.Data[(img*c+ch)*hw+pi] = v
			}
		}
	}
	return newNode("gridsample", out, func(g *tensor.Tensor) {
		var gin *tensor.Tensor
		if input.requiresGrad {
			gin = tensor.New(input.Data.Shape()...)
		}
		var ggr *tensor.Tensor
		if grid.requiresGrad {
			ggr = tensor.New(grid.Data.Shape()...)
		}
		scatter := func(img, ch, ix, iy int, v float64) {
			if ix < 0 || ix >= w || iy < 0 || iy >= h {
				return
			}
			gin.Data[((img*c+ch)*h+iy)*w+ix] += v
		}
		for img := 0; img < n; img++ {
			for pi := 0; pi < hw; pi++ {
				gx := unx(grid.Data.Data[(img*hw+pi)*2])
				gy := uny(grid.Data.Data[(img*hw+pi)*2+1])
				x0, y0 := int(math.Floor(gx)), int(math.Floor(gy))
				fx, fy := gx-float64(x0), gy-float64(y0)
				var dGx, dGy float64
				for ch := 0; ch < c; ch++ {
					gy0 := g.Data[(img*c+ch)*hw+pi]
					if gin != nil {
						scatter(img, ch, x0, y0, gy0*(1-fx)*(1-fy))
						scatter(img, ch, x0+1, y0, gy0*fx*(1-fy))
						scatter(img, ch, x0, y0+1, gy0*(1-fx)*fy)
						scatter(img, ch, x0+1, y0+1, gy0*fx*fy)
					}
					if ggr != nil {
						v00 := sample(img, ch, x0, y0)
						v10 := sample(img, ch, x0+1, y0)
						v01 := sample(img, ch, x0, y0+1)
						v11 := sample(img, ch, x0+1, y0+1)
						// d(out)/d(fx) and d(out)/d(fy).
						dGx += gy0 * ((v10-v00)*(1-fy) + (v11-v01)*fy)
						dGy += gy0 * ((v01-v00)*(1-fx) + (v11-v10)*fx)
					}
				}
				if ggr != nil {
					// Chain through the unnormalization.
					ggr.Data[(img*hw+pi)*2] += dGx * float64(w-1) / 2
					ggr.Data[(img*hw+pi)*2+1] += dGy * float64(h-1) / 2
				}
			}
		}
		if gin != nil {
			input.accumGrad(gin)
		}
		if ggr != nil {
			grid.accumGrad(ggr)
		}
	}, input, grid)
}
