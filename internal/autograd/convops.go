package autograd

import (
	"aibench/internal/tensor"
)

// Conv2D convolves NCHW input a with OIKK weights w.
func Conv2D(a, w *Value, p tensor.Conv2DParams) *Value {
	out := tensor.Conv2D(a.Data, w.Data, p)
	return newNode("conv2d", out, func(g *tensor.Tensor) {
		n, c, h, wd := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		outC := w.Data.Dim(0)
		// Rearrange grad from NCHW to (n*oh*ow) × outC to invert the
		// GEMM; NCHWToMat routes through the kernel layer's parallel
		// gate, so big backward passes split across cores like the
		// forward convolution does.
		gmat := tensor.NCHWToMat(g)
		wmat := w.Data.Reshape(outC, c*p.Kernel*p.Kernel)
		if a.requiresGrad {
			// dCols = G·W, then fold back with col2im.
			dcols := tensor.MatMul(gmat, wmat)
			a.accumGrad(tensor.Col2Im(dcols, n, c, h, wd, p))
		}
		if w.requiresGrad {
			// dW = Gᵀ·Cols.
			cols := tensor.Im2Col(a.Data, p)
			dw := tensor.TMatMul(gmat, cols)
			w.accumGrad(dw.Reshape(w.Data.Shape()...))
		}
	}, a, w)
}

// MaxPool2D applies max pooling with gradient routing to argmax positions.
func MaxPool2D(a *Value, p tensor.Conv2DParams) *Value {
	out, arg := tensor.MaxPool2D(a.Data, p)
	return newNode("maxpool", out, func(g *tensor.Tensor) {
		ga := tensor.New(a.Data.Shape()...)
		for i, idx := range arg {
			if idx >= 0 {
				ga.Data[idx] += g.Data[i]
			}
		}
		a.accumGrad(ga)
	}, a)
}

// AvgPool2D applies average pooling.
func AvgPool2D(a *Value, p tensor.Conv2DParams) *Value {
	out := tensor.AvgPool2D(a.Data, p)
	return newNode("avgpool", out, func(g *tensor.Tensor) {
		n, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		oh, ow := p.OutDim(h), p.OutDim(w)
		ga := tensor.New(a.Data.Shape()...)
		div := float64(p.Kernel * p.Kernel)
		oi := 0
		for img := 0; img < n; img++ {
			for ch := 0; ch < c; ch++ {
				base := (img*c + ch) * h * w
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						gv := g.Data[oi] / div
						for ky := 0; ky < p.Kernel; ky++ {
							iy := oy*p.Stride - p.Padding + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < p.Kernel; kx++ {
								ix := ox*p.Stride - p.Padding + kx
								if ix < 0 || ix >= w {
									continue
								}
								ga.Data[base+iy*w+ix] += gv
							}
						}
						oi++
					}
				}
			}
		}
		a.accumGrad(ga)
	}, a)
}

// GlobalAvgPool2D averages each channel plane, producing an N×C Value.
func GlobalAvgPool2D(a *Value) *Value {
	out := tensor.GlobalAvgPool2D(a.Data)
	return newNode("gap", out, func(g *tensor.Tensor) {
		n, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		plane := h * w
		ga := tensor.New(a.Data.Shape()...)
		for img := 0; img < n; img++ {
			for ch := 0; ch < c; ch++ {
				gv := g.Data[img*c+ch] / float64(plane)
				base := (img*c + ch) * plane
				for k := 0; k < plane; k++ {
					ga.Data[base+k] = gv
				}
			}
		}
		a.accumGrad(ga)
	}, a)
}

// UpsampleNearest2D doubles spatial resolution by an integer factor; the
// backward pass sums gradients over each replicated block.
func UpsampleNearest2D(a *Value, factor int) *Value {
	out := tensor.UpsampleNearest2D(a.Data, factor)
	return newNode("upsample", out, func(g *tensor.Tensor) {
		n, c, h, w := a.Data.Dim(0), a.Data.Dim(1), a.Data.Dim(2), a.Data.Dim(3)
		oh, ow := h*factor, w*factor
		ga := tensor.New(a.Data.Shape()...)
		for img := 0; img < n; img++ {
			for ch := 0; ch < c; ch++ {
				src := (img*c + ch) * oh * ow
				dst := (img*c + ch) * h * w
				for oy := 0; oy < oh; oy++ {
					iy := oy / factor
					for ox := 0; ox < ow; ox++ {
						ga.Data[dst+iy*w+ox/factor] += g.Data[src+oy*ow+ox]
					}
				}
			}
		}
		a.accumGrad(ga)
	}, a)
}
