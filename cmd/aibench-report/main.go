// Command aibench-report renders reports. By default it regenerates
// every table and figure of the paper's evaluation section in one pass,
// separated by headers — the batch mode behind EXPERIMENTS.md. With
// -from it instead rebuilds run reports (sessions, characterizations,
// scaling, replays, traces, tuning configs) from a persisted JSONL
// result stream with zero
// retraining: the records were already measured, so rebuilding is pure
// decoding plus the same renderers the live CLI uses, and the output is
// byte-identical to the live run's.
//
// Usage:
//
//	aibench-report                               # every paper table/figure
//	aibench-report table5 figure4                # a subset of them
//	aibench-report -from results.jsonl           # every run report in the file
//	aibench-report -from results.jsonl sessions  # one run report, bare
//	aibench-report -from tuneconfig.jsonl tuning # rebuild a tune sweep's table
//	aibench-report -from results.jsonl -trace    # the telemetry trace report
//	aibench-report -from results.jsonl -trace-out trace.json  # Chrome trace-event export
package main

import (
	"flag"
	"fmt"
	"os"

	"aibench"
	"aibench/internal/results"
	"aibench/internal/telemetry"
)

func main() {
	from := flag.String("from", "", "rebuild run reports from this persisted JSONL result stream instead of regenerating paper reports")
	trace := flag.Bool("trace", false, "with -from: render the telemetry trace report (deterministic plane + wall-clock columns)")
	traceOut := flag.String("trace-out", "", "with -from: export the stream's first trace as Chrome trace-event JSON to this file")
	flag.Parse()
	if (*trace || *traceOut != "") && *from == "" {
		fmt.Fprintln(os.Stderr, "-trace and -trace-out require -from")
		os.Exit(2)
	}
	if *from != "" {
		rebuild(*from, flag.Args(), *trace, *traceOut)
		return
	}
	suite := aibench.NewSuite()
	names := flag.Args()
	if len(names) == 0 {
		names = aibench.ReportNames()
	}
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		if !suite.Report(name, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "unknown report %q (have %v)\n", name, aibench.ReportNames())
			os.Exit(1)
		}
		fmt.Println()
	}
}

// rebuild renders run reports from a persisted stream. With no names it
// renders every run report the stream has records for; a single
// explicit name renders bare (no header), so rebuilt output can be
// diffed directly against a live run's. -trace forces the telemetry
// trace report; -trace-out additionally (or, given alone, only) exports
// the stream's first trace as Chrome trace-event JSON.
func rebuild(path string, names []string, trace bool, traceOut string) {
	stream, err := results.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if stream.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "note: skipped %d records with an unknown envelope version or kind\n", stream.Skipped)
	}
	if traceOut != "" {
		exportChrome(stream, traceOut)
		if !trace && len(names) == 0 {
			return
		}
	}
	if trace {
		names = []string{"trace"}
	}
	kinds := stream.Kinds()
	if len(names) == 0 {
		for _, n := range aibench.RunReportNames() {
			if k, _ := aibench.RunReportKind(n); kinds[k] > 0 {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "%s holds no renderable records\n", path)
			os.Exit(1)
		}
	}
	headers := len(names) > 1
	for _, n := range names {
		if headers {
			fmt.Printf("==== %s ====\n", n)
		}
		if !aibench.RenderRunReport(n, os.Stdout, stream.Records) {
			fmt.Fprintf(os.Stderr, "unknown run report %q (have %v)\n", n, aibench.RunReportNames())
			os.Exit(1)
		}
		if headers {
			fmt.Println()
		}
	}
}

// exportChrome writes the stream's first trace + runmetrics pair as
// Chrome trace-event JSON, loadable in chrome://tracing or
// ui.perfetto.dev. The span layout (ids, names, tree) comes from the
// deterministic plane; only the timestamps come from the wall-clock
// plane.
func exportChrome(stream *results.Stream, path string) {
	traces := stream.Traces()
	metrics := stream.RunMetrics()
	if len(traces) == 0 || len(metrics) == 0 {
		fmt.Fprintln(os.Stderr, "no trace/runmetrics records to export (collect them with `aibench run ... -telemetry -out ...`)")
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	werr := telemetry.WriteChrome(f, traces[0], metrics[0])
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "trace export: %v\n", werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s\n", path)
}
