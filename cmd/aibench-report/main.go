// Command aibench-report renders reports. By default it regenerates
// every table and figure of the paper's evaluation section in one pass,
// separated by headers — the batch mode behind EXPERIMENTS.md. With
// -from it instead rebuilds run reports (sessions, characterizations,
// scaling, replays) from a persisted JSONL result stream with zero
// retraining: the records were already measured, so rebuilding is pure
// decoding plus the same renderers the live CLI uses, and the output is
// byte-identical to the live run's.
//
// Usage:
//
//	aibench-report                               # every paper table/figure
//	aibench-report table5 figure4                # a subset of them
//	aibench-report -from results.jsonl           # every run report in the file
//	aibench-report -from results.jsonl sessions  # one run report, bare
package main

import (
	"flag"
	"fmt"
	"os"

	"aibench"
	"aibench/internal/results"
)

func main() {
	from := flag.String("from", "", "rebuild run reports from this persisted JSONL result stream instead of regenerating paper reports")
	flag.Parse()
	if *from != "" {
		rebuild(*from, flag.Args())
		return
	}
	suite := aibench.NewSuite()
	names := flag.Args()
	if len(names) == 0 {
		names = aibench.ReportNames()
	}
	for _, name := range names {
		fmt.Printf("==== %s ====\n", name)
		if !suite.Report(name, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "unknown report %q (have %v)\n", name, aibench.ReportNames())
			os.Exit(1)
		}
		fmt.Println()
	}
}

// rebuild renders run reports from a persisted stream. With no names it
// renders every run report the stream has records for; a single
// explicit name renders bare (no header), so rebuilt output can be
// diffed directly against a live run's.
func rebuild(path string, names []string) {
	stream, err := results.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if stream.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "note: skipped %d records with an unknown envelope version or kind\n", stream.Skipped)
	}
	kinds := stream.Kinds()
	if len(names) == 0 {
		for _, n := range aibench.RunReportNames() {
			if k, _ := aibench.RunReportKind(n); kinds[k] > 0 {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			fmt.Fprintf(os.Stderr, "%s holds no renderable records\n", path)
			os.Exit(1)
		}
	}
	headers := len(names) > 1
	for _, n := range names {
		if headers {
			fmt.Printf("==== %s ====\n", n)
		}
		if !aibench.RenderRunReport(n, os.Stdout, stream.Records) {
			fmt.Fprintf(os.Stderr, "unknown run report %q (have %v)\n", n, aibench.RunReportNames())
			os.Exit(1)
		}
		if headers {
			fmt.Println()
		}
	}
}
