// Command aibench-report regenerates every table and figure of the
// paper's evaluation section in one pass, separated by headers — the
// batch mode behind EXPERIMENTS.md.
package main

import (
	"fmt"
	"os"

	"aibench"
)

func main() {
	suite := aibench.NewSuite()
	for _, name := range aibench.ReportNames() {
		fmt.Printf("==== %s ====\n", name)
		if !suite.Report(name, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "internal error: unknown report %q\n", name)
			os.Exit(1)
		}
		fmt.Println()
	}
}
