package main

import (
	"strings"
	"testing"
)

// sample is real-shaped `go test -bench` output with the noise lines
// the parser must skip.
const sample = `goos: linux
goarch: amd64
pkg: aibench/internal/dist
cpu: AMD EPYC 7B13
BenchmarkShardedSession/shards=1-8         	       1	 987654321 ns/op
BenchmarkShardedSession/shards=2-8         	       2	 543210987.5 ns/op
BenchmarkShardedSession/shards=4-8         	       1	 321098765 ns/op
PASS
ok  	aibench/internal/dist	4.321s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkShardedSession/shards=1-8": 987654321,
		"BenchmarkShardedSession/shards=2-8": 543210987.5,
		"BenchmarkShardedSession/shards=4-8": 321098765,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}

// TestSplitKernels covers the kernel dimension: middle segments,
// last-segment names that carry the -N GOMAXPROCS suffix, and results
// with no kernel dimension at all.
func TestSplitKernels(t *testing.T) {
	results := map[string]float64{
		"BenchmarkMatMul/kernel=blocked/n=512-8":           100,
		"BenchmarkMatMul/kernel=naive/n=512-8":             200,
		"BenchmarkConv2D/kernel=blocked-8":                 300,
		"BenchmarkShardedSession/shards=2-8":               400,
		"BenchmarkMatMul/kernel=avx-512/n=64-8":            500, // dash-digits in the kernel name itself
		"BenchmarkMatMul/kernel=tuned/skinny=64x2048x64-8": 600, // tuned tier's shape-class sub-benchmarks
	}
	got := splitKernels(results)
	if len(got) != 4 {
		t.Fatalf("split into %d kernels, want 4: %v", len(got), got)
	}
	if len(got["tuned"]) != 1 || got["tuned"]["BenchmarkMatMul/kernel=tuned/skinny=64x2048x64-8"] != 600 {
		t.Errorf("tuned bucket wrong: %v", got["tuned"])
	}
	if len(got["avx-512"]) != 1 || got["avx-512"]["BenchmarkMatMul/kernel=avx-512/n=64-8"] != 500 {
		t.Errorf("avx-512 bucket wrong (dash-digit kernel name mangled?): %v", got)
	}
	if got["blocked"]["BenchmarkMatMul/kernel=blocked/n=512-8"] != 100 ||
		got["blocked"]["BenchmarkConv2D/kernel=blocked-8"] != 300 {
		t.Errorf("blocked bucket wrong: %v", got["blocked"])
	}
	if len(got["naive"]) != 1 || got["naive"]["BenchmarkMatMul/kernel=naive/n=512-8"] != 200 {
		t.Errorf("naive bucket wrong: %v", got["naive"])
	}
	for k, bucket := range got {
		if _, leaked := bucket["BenchmarkShardedSession/shards=2-8"]; leaked {
			t.Errorf("kernel-less result leaked into %s bucket", k)
		}
	}
}

func TestSplitKernelsNoneDeclared(t *testing.T) {
	if got := splitKernels(map[string]float64{"BenchmarkX-8": 1}); got != nil {
		t.Fatalf("expected nil for kernel-less results, got %v", got)
	}
}
