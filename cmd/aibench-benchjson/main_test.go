package main

import (
	"strings"
	"testing"
)

// sample is real-shaped `go test -bench` output with the noise lines
// the parser must skip.
const sample = `goos: linux
goarch: amd64
pkg: aibench/internal/dist
cpu: AMD EPYC 7B13
BenchmarkShardedSession/shards=1-8         	       1	 987654321 ns/op
BenchmarkShardedSession/shards=2-8         	       2	 543210987.5 ns/op
BenchmarkShardedSession/shards=4-8         	       1	 321098765 ns/op
PASS
ok  	aibench/internal/dist	4.321s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkShardedSession/shards=1-8": 987654321,
		"BenchmarkShardedSession/shards=2-8": 543210987.5,
		"BenchmarkShardedSession/shards=4-8": 321098765,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("expected an error for input with no benchmark lines")
	}
}
