// Command aibench-benchjson converts `go test -bench` text output into
// a compact JSON artifact mapping benchmark name → ns/op. CI runs it
// on every push to turn the sharded-session benchmarks into a
// per-commit performance trajectory (BENCH_<sha>.json artifacts) that
// can be diffed or plotted across history.
//
// Usage:
//
//	go test -bench BenchmarkShardedSession -benchtime 1x -run '^$' ./internal/dist |
//	    aibench-benchjson -sha "$GITHUB_SHA" -out BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// report is the artifact schema: commit metadata plus one ns/op entry
// per benchmark (the -N GOMAXPROCS suffix is kept so width changes on
// the runner are visible rather than silently merged). Results whose
// name carries a kernel=<name> sub-benchmark segment are additionally
// bucketed per compute kernel, so the performance trajectory separates
// kernel wins from orchestration wins.
type report struct {
	SHA     string             `json:"sha,omitempty"`
	Results map[string]float64 `json:"results"`
	// Kernels maps compute-kernel name → benchmark name → ns/op for
	// the subset of results that declare a kernel dimension.
	Kernels map[string]map[string]float64 `json:"kernels,omitempty"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkShardedSession/shards=4-8   1   123456789 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// kernelDim extracts the kernel=<name> path segment benchmarks use to
// declare which compute kernel produced a result. It runs against the
// name with the GOMAXPROCS suffix already removed, so kernel names may
// themselves contain dash-digits (e.g. a future "avx-512").
var kernelDim = regexp.MustCompile(`(?:^|/)kernel=([^/]+)`)

// gomaxprocsSuffix is the -N the test runner appends to the full
// benchmark name (and only there — never mid-name).
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// splitKernels buckets results by their kernel dimension; results
// without one are left out (they are orchestration benchmarks, not
// kernel benchmarks). Returns nil when nothing declares a kernel.
// Bucket entries keep the original, unstripped benchmark name.
func splitKernels(results map[string]float64) map[string]map[string]float64 {
	var byKernel map[string]map[string]float64
	//lint:allow maprange buckets one map into others; every map is JSON-encoded, and encoding/json sorts keys, so iteration order never reaches the artifact
	for name, ns := range results {
		m := kernelDim.FindStringSubmatch(gomaxprocsSuffix.ReplaceAllString(name, ""))
		if m == nil {
			continue
		}
		if byKernel == nil {
			byKernel = make(map[string]map[string]float64)
		}
		if byKernel[m[1]] == nil {
			byKernel[m[1]] = make(map[string]float64)
		}
		byKernel[m[1]][name] = ns
	}
	return byKernel
}

// parseBench extracts benchmark name → ns/op from `go test -bench`
// output, ignoring non-result lines (headers, PASS/ok, logs). It is an
// error for the input to contain no results — an empty artifact would
// silently record "no trajectory" instead of a broken benchmark run.
func parseBench(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op %q in line %q: %v", m[2], sc.Text(), err)
		}
		results[m[1]] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return results, nil
}

func main() {
	in := flag.String("in", "-", "benchmark text to read (- = stdin)")
	out := flag.String("out", "-", "JSON file to write (- = stdout)")
	sha := flag.String("sha", "", "commit SHA recorded in the artifact")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := parseBench(src)
	if err != nil {
		fatal(err)
	}

	dst := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report{SHA: *sha, Results: results, Kernels: splitKernels(results)}); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aibench-benchjson:", err)
	os.Exit(1)
}
