package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aibench/internal/server"
)

// cmdServe runs suite-as-a-service: the internal/server HTTP front end
// over a bounded per-tenant fair queue, a worker pool, and the exact
// result cache. SIGINT/SIGTERM starts a graceful drain — running jobs
// finish and stream out, queued jobs are shed with 503, new
// submissions are refused — bounded by -drain-timeout, after which
// in-flight runs are canceled at their next epoch boundary.
func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "listen address (use :0 to pick a free port)")
	workers := fs.Int("workers", 1, "worker pool width: how many jobs run concurrently")
	queueCap := fs.Int("queue", 16, "submission queue bound across all tenants (full queue answers 429)")
	cacheCap := fs.Int("cache", 64, "exact result cache bound, in completed streams")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for running jobs before canceling them")
	fs.Parse(args)

	srv := server.New(server.Options{
		Workers:      *workers,
		QueueCap:     *queueCap,
		CacheEntries: *cacheCap,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("aibench serve: suite %s listening on %s (workers=%d queue=%d cache=%d)\n",
		srv.SuiteSHA(), ln.Addr(), *workers, *queueCap, *cacheCap)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stop() // second signal force-quits via default handling
	fmt.Fprintln(os.Stderr, "aibench serve: draining (running jobs finish, queued jobs are shed)")

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "aibench serve: drain timed out; in-flight runs canceled: %v\n", err)
	}
	if err := hs.Shutdown(dctx); err != nil && err != context.DeadlineExceeded {
		fmt.Fprintf(os.Stderr, "aibench serve: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "aibench serve: stopped")
}

// cmdSubmit posts one Plan to a running `aibench serve` and streams
// the NDJSON envelope response as it arrives — to stdout by default,
// or to -out, where `aibench-report -from` can rebuild reports from
// it. Exit status: 0 on a streamed or cached result, 3 on backpressure
// (429: retry after the Retry-After delay), 1 otherwise.
func cmdSubmit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "server address (host:port)")
	tenant := fs.String("tenant", "", "tenant id for fair scheduling (X-Tenant header)")
	planJSON := fs.String("plan", "", `plan JSON, e.g. '{"kind":"session","benchmarks":["DC-AI-C1"],"epochs":1}' ('-' reads stdin)`)
	out := fs.String("out", "", "write the response stream to this file instead of stdout")
	fs.Parse(args)
	if *planJSON == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench submit -plan '{...}' [-addr host:port] [-tenant T] [-out F]")
		os.Exit(2)
	}
	body := *planJSON
	if body == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		body = string(data)
	}

	req, err := http.NewRequest(http.MethodPost, "http://"+*addr+"/jobs", strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	req.Header.Set("Content-Type", "application/json")
	if *tenant != "" {
		req.Header.Set("X-Tenant", *tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		fmt.Fprintf(os.Stderr, "aibench submit: %s: %s", resp.Status, msg)
		if resp.StatusCode == http.StatusTooManyRequests {
			fmt.Fprintf(os.Stderr, "aibench submit: backpressure; retry after %ss\n", resp.Header.Get("Retry-After"))
			os.Exit(3)
		}
		os.Exit(1)
	}

	dst := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", *out, err)
			os.Exit(1)
		}
		outFile = f
		dst = f
	}
	n, err := io.Copy(dst, resp.Body)
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "aibench submit: stream broke after %d bytes: %v\n", n, err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "aibench submit: job %s cache=%s: %d bytes streamed to %s\n",
			resp.Header.Get("X-Job-Id"), resp.Header.Get("X-Cache"), n, *out)
	}
}
