// Command aibench is the suite CLI: list benchmarks, run scaled training
// sessions, characterize workloads, select the subset, and render the
// paper's tables and figures.
//
// Usage:
//
//	aibench list
//	aibench run <id> [-epochs N] [-seed S] [-quasi]
//	aibench run-all [-workers N] [-epochs N] [-seed S] [-quasi] [-v]
//	aibench characterize <id|all> [-gpu xp|rtx] [-workers N]
//	aibench subset
//	aibench costs
//	aibench report <table1..table7|figure1a..figure7|all>
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"aibench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	suite := aibench.NewSuite()
	switch os.Args[1] {
	case "list":
		cmdList(suite)
	case "run":
		cmdRun(suite, os.Args[2:])
	case "run-all":
		cmdRunAll(suite, os.Args[2:])
	case "characterize":
		cmdCharacterize(suite, os.Args[2:])
	case "subset":
		cmdSubset(suite)
	case "costs":
		cmdCosts(suite)
	case "report":
		cmdReport(suite, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aibench <list|run|run-all|characterize|subset|costs|report> [args]")
}

// parseWithID parses fs against args accepting the positional id before,
// after, or between the flags. The flag package stops at the first
// positional argument, so the documented `aibench characterize <id>
// [-gpu rtx]` form would otherwise silently drop every flag after the
// id. Returns "" when no positional was given.
func parseWithID(fs *flag.FlagSet, args []string) string {
	id := ""
	for len(args) > 0 {
		fs.Parse(args)
		if fs.NArg() == 0 {
			break
		}
		if id == "" {
			id = fs.Arg(0)
		}
		args = fs.Args()[1:]
	}
	return id
}

func cmdList(s *aibench.Suite) {
	fmt.Printf("%-12s %-8s %-30s %-36s %s\n", "ID", "Suite", "Task", "Algorithm", "Target")
	for _, b := range s.All() {
		marker := " "
		if b.InSubset() {
			marker = "*"
		}
		fmt.Printf("%-12s %-8s %-30s %-36s %s %s\n", b.ID, b.Suite, b.Task, b.Algorithm, b.Target, marker)
	}
	fmt.Println("(* = AIBench subset member)")
}

func cmdRun(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "random seed")
	quasi := fs.Bool("quasi", false, "run a quasi-entire session (fixed epochs)")
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench run <id> [-epochs N] [-seed S] [-quasi]")
		os.Exit(2)
	}
	b := s.Benchmark(id)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try `aibench list`)\n", id)
		os.Exit(1)
	}
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	res := b.RunScaledSession(aibench.SessionConfig{
		Kind: kind, Seed: *seed, MaxEpochs: *epochs, Log: os.Stdout,
	})
	fmt.Printf("\n%s (%s): epochs=%d quality=%.4f target=%.4f reached=%v\n",
		b.ID, res.Name, res.Epochs, res.FinalQuality, res.Target, res.ReachedGoal)
}

func cmdRunAll(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run-all", flag.ExitOnError)
	workers := fs.Int("workers", 0, "pool width (0 = GOMAXPROCS)")
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "base seed; per-benchmark seeds are derived deterministically")
	quasi := fs.Bool("quasi", false, "run quasi-entire sessions (fixed epochs)")
	verbose := fs.Bool("v", false, "stream per-epoch progress from every session")
	fs.Parse(args)
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	width := *workers
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	cfg := aibench.SessionConfig{Kind: kind, Seed: *seed, MaxEpochs: *epochs}
	if *verbose {
		cfg.Log = os.Stdout
	}
	start := time.Now()
	results := s.RunAllScaled(cfg, width)
	elapsed := time.Since(start)
	if *verbose {
		fmt.Println()
	}
	fmt.Printf("%-12s %-34s %7s %9s %9s %s\n", "ID", "Name", "Epochs", "Quality", "Target", "Reached")
	reached := 0
	for _, r := range results {
		if r.ReachedGoal {
			reached++
		}
		fmt.Printf("%-12s %-34s %7d %9.4f %9.4f %v\n",
			r.ID, r.Name, r.Epochs, r.FinalQuality, r.Target, r.ReachedGoal)
	}
	fmt.Printf("\n%d/%d sessions reached their target in %s (workers=%d)\n",
		reached, len(results), elapsed.Round(time.Millisecond), width)
}

func cmdCharacterize(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	gpu := fs.String("gpu", "xp", "device: xp (Titan XP) or rtx (Titan RTX)")
	workers := fs.Int("workers", 0, "pool width for `characterize all` (0 = GOMAXPROCS)")
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench characterize <id|all> [-gpu xp|rtx] [-workers N]")
		os.Exit(2)
	}
	dev := aibench.TitanXP()
	if *gpu == "rtx" {
		dev = aibench.TitanRTX()
	}
	if id == "all" {
		fmt.Printf("%-12s %-28s %12s %10s %8s %6s %6s\n", "ID", "Task", "MFLOPs", "MParams", "Epochs", "Occ", "IPC")
		for _, c := range s.CharacterizeAll(dev, *workers) {
			fmt.Printf("%-12s %-28s %12.2f %10.2f %8.1f %6.3f %6.3f\n",
				c.ID, c.Task, c.MFLOPs, c.MParams, c.Epochs,
				c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency)
		}
		return
	}
	b := s.Benchmark(id)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
		os.Exit(1)
	}
	c := b.Characterize(dev)
	fmt.Printf("%s — %s on %s\n", c.ID, c.Task, dev.Name)
	fmt.Printf("  forward FLOPs: %.2f M   params: %.2f M   epochs-to-quality: %.1f\n", c.MFLOPs, c.MParams, c.Epochs)
	fmt.Printf("  occupancy=%.3f ipc=%.3f gld=%.3f gst=%.3f dram=%.3f\n",
		c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency,
		c.Metrics.GldEfficiency, c.Metrics.GstEfficiency, c.Metrics.DramUtilization)
	fmt.Println("  runtime breakdown:")
	// Sort by descending share (category name breaks ties) so output is
	// reproducible run to run despite map iteration order.
	type catShare struct {
		cat   string
		share float64
	}
	shares := make([]catShare, 0, len(c.Shares))
	for cat, share := range c.Shares {
		shares = append(shares, catShare{string(cat), share})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].share != shares[j].share {
			return shares[i].share > shares[j].share
		}
		return shares[i].cat < shares[j].cat
	})
	for _, cs := range shares {
		fmt.Printf("    %-20s %5.1f%%\n", cs.cat, cs.share*100)
	}
	fmt.Println("  top hotspot functions:")
	for i, h := range c.Hotspots {
		if i >= 5 {
			break
		}
		fmt.Printf("    %-55s %5.1f%% (%d calls)\n", h.Name, h.Share*100, h.Calls)
	}
}

func cmdSubset(s *aibench.Suite) {
	chosen, table := s.SelectSubset()
	fmt.Printf("%-12s %-28s %-8s %-7s %-9s %s\n", "ID", "Task", "CV", "Metric", "Selected", "Rejection")
	for _, c := range table {
		cv := "N/A"
		if c.CV >= 0 {
			cv = fmt.Sprintf("%.2f%%", c.CV*100)
		}
		fmt.Printf("%-12s %-28s %-8s %-7v %-9v %s\n", c.ID, c.Task, cv, c.HasMetric, c.Selected, c.RejectionNote)
	}
	fmt.Print("\nselected subset: ")
	for _, b := range chosen {
		fmt.Printf("%s (%s)  ", b.ID, b.Task)
	}
	fmt.Println()
}

func cmdCosts(s *aibench.Suite) {
	c := s.Costs()
	fmt.Printf("AIBench full suite: %8.2f h\n", c.AIBenchFullHours)
	fmt.Printf("MLPerf suite:       %8.2f h\n", c.MLPerfHours)
	fmt.Printf("AIBench subset:     %8.2f h\n", c.SubsetHours)
	fmt.Printf("subset vs AIBench:  %8.1f%% saved (paper: 41%%)\n", c.SubsetVsAIBench*100)
	fmt.Printf("subset vs MLPerf:   %8.1f%% saved (paper: 63%%)\n", c.SubsetVsMLPerf*100)
	fmt.Printf("AIBench vs MLPerf:  %8.1f%% saved (paper: 37%%)\n", c.AIBenchVsMLPerf*100)
}

func cmdReport(s *aibench.Suite, args []string) {
	if len(args) < 1 {
		fmt.Fprintf(os.Stderr, "usage: aibench report <%v|all>\n", aibench.ReportNames())
		os.Exit(2)
	}
	names := args
	if args[0] == "all" {
		names = aibench.ReportNames()
	}
	for _, n := range names {
		if !s.Report(n, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "unknown report %q\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}
}
