// Command aibench is the suite CLI: list benchmarks, run scaled training
// sessions, characterize workloads, sweep data-parallel scaling, replay
// paper-scale sessions, select the subset, and render the paper's
// tables and figures. Every run command builds an aibench.Plan,
// validates it into a Runner, and executes it with SIGINT cancellation;
// -out streams each record to a JSONL file as a versioned envelope that
// `aibench-report -from` can rebuild reports from without re-running.
//
// Usage:
//
//	aibench list
//	aibench run <id> [-epochs N] [-seed S] [-quasi] [-shards N] [-backend local|process] [-kernel naive|blocked|tuned] [-tune-from F] [-out results.jsonl]
//	aibench run-all [-workers N] [-epochs N] [-seed S] [-quasi] [-shards N] [-backend B] [-kernel K] [-tune-from F] [-out results.jsonl] [-v]
//	aibench scaling [id] [-shards 1,2,4] [-backend B] [-epochs N] [-seed S] [-kernel K] [-tune-from F] [-out results.jsonl]
//	aibench characterize <id|all> [-gpu xp|rtx] [-workers N] [-out results.jsonl]
//	aibench replay [id|all] [-seed S] [-out results.jsonl]
//	aibench tune [-quick] [-rounds N] [-out tuneconfig.jsonl] [-v]
//	aibench subset
//	aibench costs
//	aibench report <table1..table7|figure1a..figure7|all>
//	aibench version [-tune-from F]
//	aibench serve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	aibench submit -plan '{"kind":"session",...}' [-addr host:port] [-tenant T] [-out F]
//
// `aibench serve` runs the suite as a service: Plan submissions POSTed
// to /jobs flow through a bounded per-tenant fair queue and a worker
// pool, results stream back as the same NDJSON envelope lines `run
// -out` writes, and identical submissions replay byte-identically from
// an exact result cache (see internal/server). SIGINT/SIGTERM drains
// gracefully. `aibench submit` is the matching client: it posts a plan
// JSON and streams the response to stdout or -out, where
// `aibench-report -from` can rebuild reports from it.
//
// Every run command also accepts -telemetry (collect the two-plane
// trace/metrics records and print a span summary), -cpuprofile, and
// -memprofile (runtime/pprof profiles of the run).
//
// `aibench tune` sweeps the tuned kernel's tile/micro-kernel menu on
// this machine and prints the winning config per (op, shape class);
// -out persists it as a tuneconfig envelope that `run -tune-from`,
// `version -tune-from`, and $AIBENCH_TUNE_FROM (benchmarks) reload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"aibench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if os.Args[1] == "worker" {
		// Hidden: the process dist backend re-execs this binary as
		// `aibench worker` and drives the replica over stdin/stdout with
		// the frame protocol (see internal/dist). Not part of the CLI
		// surface — never invoke it by hand.
		if err := aibench.RunDistWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	suite := aibench.NewSuite()
	switch os.Args[1] {
	case "list":
		cmdList(suite)
	case "run":
		cmdRun(suite, os.Args[2:])
	case "run-all":
		cmdRunAll(suite, os.Args[2:])
	case "scaling":
		cmdScaling(suite, os.Args[2:])
	case "characterize":
		cmdCharacterize(suite, os.Args[2:])
	case "replay":
		cmdReplay(suite, os.Args[2:])
	case "tune":
		cmdTune(suite, os.Args[2:])
	case "subset":
		cmdSubset(suite)
	case "costs":
		cmdCosts(suite)
	case "report":
		cmdReport(suite, os.Args[2:])
	case "version":
		cmdVersion(suite, os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "submit":
		cmdSubmit(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aibench <list|run|run-all|scaling|characterize|replay|tune|subset|costs|report|version|serve|submit> [args]")
}

// cmdVersion prints the header every bug report and trace artifact
// needs: the roster fingerprint behind each envelope's suite_sha, the
// toolchain, the registered compute kernels, and the tuned kernel's
// resolved tuning config. -tune-from loads a persisted config first,
// so the banner shows exactly what a run with the same flag would use.
func cmdVersion(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("version", flag.ExitOnError)
	tuneFrom := tuneFromFlag(fs)
	fs.Parse(args)
	if *tuneFrom != "" {
		if _, err := aibench.LoadTuning(*tuneFrom); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("aibench suite %s\n", s.SHA())
	fmt.Printf("go: %s  gomaxprocs: %d  os/arch: %s/%s\n",
		runtime.Version(), runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH)
	fmt.Printf("kernels: %s (active: %s)\n",
		strings.Join(aibench.KernelNames(), ", "), aibench.ActiveKernel())
	label := "from " + aibench.TuningSource()
	if aibench.TuningSource() == "builtin" {
		label = "builtin defaults"
	}
	fmt.Printf("tuning: %s: %s\n", label, aibench.TuningSummary())
}

// kernelFlag registers the -kernel flag shared by the training
// commands; the value goes into Plan.Kernel, where NewRunner validates
// it up front.
func kernelFlag(fs *flag.FlagSet) *string {
	names := strings.Join(aibench.KernelNames(), "|")
	return fs.String("kernel", "", "compute kernel ("+names+"; default: $"+
		"AIBENCH_KERNEL or blocked)")
}

// tuneFromFlag registers the -tune-from flag shared by the training
// commands and `version`; the value goes into Plan.TuneFrom (the run
// commands default -kernel to tuned when it is set).
func tuneFromFlag(fs *flag.FlagSet) *string {
	return fs.String("tune-from", "", "load the tuned kernel's config from this tuneconfig JSONL stream (implies -kernel tuned)")
}

// applyTuneFrom defaults the kernel to tuned when -tune-from is given
// without -kernel: tuning parameterizes only the tuned kernel, so the
// flag alone is an unambiguous ask. An explicit -kernel still wins —
// NewRunner rejects the combination with a real error message.
func applyTuneFrom(tuneFrom, kernel *string) {
	if *tuneFrom != "" && *kernel == "" {
		*kernel = "tuned"
	}
}

// backendFlag registers the -backend flag shared by the sharded
// commands; the value goes into Plan.Backend, where NewRunner validates
// it against the dist backend registry. Backends train bitwise
// identically — the flag chooses the execution substrate (in-process
// goroutines vs isolated worker processes), never the numbers.
func backendFlag(fs *flag.FlagSet) *string {
	names := strings.Join(aibench.BackendNames(), "|")
	return fs.String("backend", "", "dist execution backend for sharded training ("+names+"; default: local)")
}

// outFlag registers the -out flag shared by every run command.
func outFlag(fs *flag.FlagSet) *string {
	return fs.String("out", "", "stream each record to this JSONL file as a versioned envelope")
}

// runOpts carries the observability flags shared by every run command.
type runOpts struct {
	telemetry *bool
	cpu, mem  *string
}

// runOptsFlags registers -telemetry/-cpuprofile/-memprofile.
func runOptsFlags(fs *flag.FlagSet) runOpts {
	return runOpts{
		telemetry: fs.Bool("telemetry", false, "collect two-plane trace/metrics records and print a span summary"),
		cpu:       fs.String("cpuprofile", "", "write a CPU profile of the run to this file"),
		mem:       fs.String("memprofile", "", "write a heap profile to this file after the run"),
	}
}

// startProfiles begins the requested pprof captures; the returned stop
// finishes them. runPlan calls stop right after the run completes so
// the profiles survive callers that os.Exit (which skips defers).
func startProfiles(opts runOpts) func() {
	var cpuFile *os.File
	if opts.cpu != nil && *opts.cpu != "" {
		f, err := os.Create(*opts.cpu)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", *opts.cpu, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if opts.mem != nil && *opts.mem != "" {
			f, err := os.Create(*opts.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}
}

// printTrace renders the telemetry span summary after the command's
// own output when the run collected one (-telemetry).
func printTrace(res *aibench.RunResult) {
	if res.Trace != nil {
		fmt.Println()
		aibench.RenderRunReport("trace", os.Stdout, res.Records())
	}
}

// parseWithID parses fs against args accepting the positional id before,
// after, or between the flags. The flag package stops at the first
// positional argument, so the documented `aibench characterize <id>
// [-gpu rtx]` form would otherwise silently drop every flag after the
// id. Returns "" when no positional was given.
func parseWithID(fs *flag.FlagSet, args []string) string {
	id := ""
	for len(args) > 0 {
		fs.Parse(args)
		if fs.NArg() == 0 {
			break
		}
		if id == "" {
			id = fs.Arg(0)
		}
		args = fs.Args()[1:]
	}
	return id
}

// runPlan validates the plan, wires SIGINT cancellation, the optional
// JSONL envelope stream, and the observability opts (-telemetry flips
// Plan.Telemetry; profiles bracket the run), then executes it.
// Interrupting once stops launching new work (running sessions stop at
// their next epoch boundary) while partial results still reach the
// stream; a second Ctrl-C force-quits because default signal handling
// is restored after the first. Returns the run's results, how many
// records were persisted, whether the run was interrupted, and the run
// error (a failed sink — a full disk, say — or output-file close):
// callers render the partial results they have, then pass it to
// exitOnRunError and exit non-zero on interruption.
func runPlan(s *aibench.Suite, p aibench.Plan, out string, opts runOpts) (*aibench.RunResult, int, bool, error) {
	if opts.telemetry != nil && *opts.telemetry {
		p.Telemetry = true
	}
	runner, err := s.NewRunner(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	var sink func(aibench.Record) error
	var outFile *os.File
	var w *aibench.ResultWriter
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", out, err)
			os.Exit(1)
		}
		outFile = f
		meta := runner.Meta()
		meta.Started = time.Now().UTC().Format(time.RFC3339)
		w = aibench.NewResultWriter(f, meta)
		sink = w.Write
	}

	stopProfiles := startProfiles(opts)
	res, runErr := runner.Run(ctx, sink)
	stopProfiles()
	interrupted := ctx.Err() != nil
	written := 0
	if outFile != nil {
		written = w.Count()
		if err := outFile.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return res, written, interrupted, runErr
}

// exitOnRunError reports a run error — persistence failed mid-run, so
// it must not masquerade as success — after the caller has rendered
// whatever partial results completed.
func exitOnRunError(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}
}

func cmdList(s *aibench.Suite) {
	fmt.Printf("%-12s %-8s %-30s %-36s %s\n", "ID", "Suite", "Task", "Algorithm", "Target")
	for _, b := range s.All() {
		marker := " "
		if b.InSubset() {
			marker = "*"
		}
		fmt.Printf("%-12s %-8s %-30s %-36s %s %s\n", b.ID, b.Suite, b.Task, b.Algorithm, b.Target, marker)
	}
	fmt.Println("(* = AIBench subset member)")
}

func cmdRun(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "base seed; the session seed is derived deterministically")
	quasi := fs.Bool("quasi", false, "run a quasi-entire session (fixed epochs)")
	shards := fs.Int("shards", 0, "data-parallel shard workers (0 = serial; results are bitwise identical for any count)")
	backend := backendFlag(fs)
	kernel := kernelFlag(fs)
	tuneFrom := tuneFromFlag(fs)
	out := outFlag(fs)
	opts := runOptsFlags(fs)
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench run <id> [-epochs N] [-seed S] [-quasi] [-shards N] [-backend B] [-kernel K] [-tune-from F] [-telemetry] [-out F]")
		os.Exit(2)
	}
	if s.Benchmark(id) == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try `aibench list`)\n", id)
		os.Exit(1)
	}
	applyTuneFrom(tuneFrom, kernel)
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	res, written, interrupted, runErr := runPlan(s, aibench.Plan{
		Kind: aibench.RunSession, Benchmarks: []string{id}, Session: kind,
		Seed: *seed, Epochs: *epochs, Shards: *shards, Backend: *backend,
		Kernel: *kernel, TuneFrom: *tuneFrom, Log: os.Stdout,
	}, *out, opts)
	if len(res.Sessions) == 0 || res.Sessions[0].ID == "" {
		exitOnRunError(runErr)
		fmt.Fprintln(os.Stderr, "interrupted before the session started")
		os.Exit(1)
	}
	r := res.Sessions[0]
	if r.FallbackReason != "" {
		fmt.Printf("(%s ran serial: %s)\n", r.ID, r.FallbackReason)
	}
	fmt.Printf("\n%s (%s): epochs=%d quality=%.4f target=%.4f reached=%v shards=%d kernel=%s\n",
		r.ID, r.Name, r.Epochs, r.FinalQuality, r.Target, r.ReachedGoal, r.Shards, r.Kernel)
	printTrace(res)
	exitOnRunError(runErr)
	if *out != "" {
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, written)
	}
	if r.Error != "" {
		fmt.Fprintf(os.Stderr, "%s failed after %d epochs: %s\n", r.ID, r.Epochs, r.Error)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted after %d epochs\n", r.Epochs)
		os.Exit(1)
	}
}

func cmdRunAll(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run-all", flag.ExitOnError)
	workers := fs.Int("workers", 0, "pool width (0 = GOMAXPROCS)")
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "base seed; per-benchmark seeds are derived deterministically")
	quasi := fs.Bool("quasi", false, "run quasi-entire sessions (fixed epochs)")
	shards := fs.Int("shards", 0, "data-parallel shard workers per session (0 = serial)")
	backend := backendFlag(fs)
	kernel := kernelFlag(fs)
	tuneFrom := tuneFromFlag(fs)
	out := outFlag(fs)
	opts := runOptsFlags(fs)
	verbose := fs.Bool("v", false, "stream per-epoch progress from every session")
	fs.Parse(args)
	applyTuneFrom(tuneFrom, kernel)
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	width := *workers
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	plan := aibench.Plan{
		Kind: aibench.RunSession, Session: kind, Seed: *seed, Epochs: *epochs,
		Shards: *shards, Backend: *backend, Kernel: *kernel, TuneFrom: *tuneFrom,
		Workers: *workers,
	}
	if *verbose {
		plan.Log = os.Stdout
	}

	start := time.Now()
	res, written, interrupted, runErr := runPlan(s, plan, *out, opts)
	elapsed := time.Since(start)
	if *verbose {
		fmt.Println()
	}
	aibench.RenderRunReport("sessions", os.Stdout, res.Records())
	reached, ran, ranEpochs, failed := 0, 0, 0, 0
	for _, r := range res.Sessions {
		if r.ID == "" {
			continue // session never launched (run interrupted)
		}
		ran++
		ranEpochs += r.Epochs
		if r.ReachedGoal {
			reached++
		}
		if r.Error != "" {
			failed++
			fmt.Fprintf(os.Stderr, "%s failed after %d epochs: %s\n", r.ID, r.Epochs, r.Error)
		}
	}
	fmt.Printf("\n%d/%d sessions reached their target in %s (workers=%d kernel=%s)\n",
		reached, ran, elapsed.Round(time.Millisecond), width, aibench.ActiveKernel())
	printTrace(res)
	exitOnRunError(runErr)
	if *out != "" {
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, written)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d sessions failed; results above are partial\n", failed, ran)
		os.Exit(1)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted after %d epochs across %d sessions (%d sessions never launched)\n",
			ranEpochs, ran, len(res.Sessions)-ran)
		os.Exit(1)
	}
}

// cmdScaling sweeps data-parallel shard counts over the shardable
// benchmarks and prints time per epoch plus speedup versus one shard.
func cmdScaling(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	shardsCSV := fs.String("shards", "1,2,4", "comma-separated shard counts to measure")
	epochs := fs.Int("epochs", 2, "epochs to time per point")
	seed := fs.Int64("seed", 42, "base seed")
	backend := backendFlag(fs)
	kernel := kernelFlag(fs)
	tuneFrom := tuneFromFlag(fs)
	out := outFlag(fs)
	opts := runOptsFlags(fs)
	id := parseWithID(fs, args)
	applyTuneFrom(tuneFrom, kernel)
	var shards []int
	for _, tok := range strings.Split(*shardsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -shards value %q\n", tok)
			os.Exit(2)
		}
		shards = append(shards, n)
	}
	var ids []string
	if id != "" {
		b := s.Benchmark(id)
		if b == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
			os.Exit(1)
		}
		if !b.Shardable() {
			fmt.Fprintf(os.Stderr, "%s has no shardable train step\n", id)
			os.Exit(1)
		}
		ids = []string{id}
	}
	res, written, interrupted, runErr := runPlan(s, aibench.Plan{
		Kind: aibench.RunScaling, Benchmarks: ids, ShardSweep: shards,
		Epochs: *epochs, Seed: *seed, Backend: *backend, Kernel: *kernel,
		TuneFrom: *tuneFrom,
	}, *out, opts)
	if len(res.Scaling) == 0 {
		if interrupted {
			exitOnRunError(runErr)
			fmt.Fprintln(os.Stderr, "interrupted before any scaling point was measured")
			os.Exit(1)
		}
		fmt.Println("no shardable benchmarks selected")
		exitOnRunError(runErr)
		return
	}
	aibench.RenderRunReport("scaling", os.Stdout, res.Records())
	fmt.Println("\n(identical losses at every shard count; speedup is pure scheduling gain)")
	printTrace(res)
	exitOnRunError(runErr)
	if *out != "" {
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, written)
	}
	if interrupted {
		points := 0
		for _, row := range res.Scaling {
			points += len(row.Points)
		}
		fmt.Fprintf(os.Stderr, "interrupted after %d epochs (%d scaling points measured); results above are partial\n",
			points**epochs, points)
		os.Exit(1)
	}
}

func cmdCharacterize(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	gpu := fs.String("gpu", "xp", "device: xp (Titan XP) or rtx (Titan RTX)")
	workers := fs.Int("workers", 0, "pool width for `characterize all` (0 = GOMAXPROCS)")
	out := outFlag(fs)
	opts := runOptsFlags(fs)
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench characterize <id|all> [-gpu xp|rtx] [-workers N] [-out F]")
		os.Exit(2)
	}
	dev := aibench.TitanXP()
	if *gpu == "rtx" {
		dev = aibench.TitanRTX()
	}
	plan := aibench.Plan{Kind: aibench.RunCharacterize, Device: dev, Workers: *workers}
	if id != "all" {
		if s.Benchmark(id) == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
			os.Exit(1)
		}
		plan.Benchmarks = []string{id}
	}
	res, written, _, runErr := runPlan(s, plan, *out, opts)
	if id == "all" {
		aibench.RenderRunReport("characterizations", os.Stdout, res.Records())
		printTrace(res)
		exitOnRunError(runErr)
		if *out != "" {
			fmt.Printf("\nresults streamed to %s (%d JSONL lines)\n", *out, written)
		}
		return
	}
	if len(res.Characterizations) == 0 || res.Characterizations[0].ID == "" {
		fmt.Println("interrupted before the characterization started")
		exitOnRunError(runErr)
		os.Exit(1)
	}
	c := res.Characterizations[0]
	fmt.Printf("%s — %s on %s\n", c.ID, c.Task, dev.Name)
	fmt.Printf("  forward FLOPs: %.2f M   params: %.2f M   epochs-to-quality: %.1f\n", c.MFLOPs, c.MParams, c.Epochs)
	fmt.Printf("  occupancy=%.3f ipc=%.3f gld=%.3f gst=%.3f dram=%.3f\n",
		c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency,
		c.Metrics.GldEfficiency, c.Metrics.GstEfficiency, c.Metrics.DramUtilization)
	fmt.Println("  runtime breakdown:")
	// Sort by descending share (category name breaks ties) so output is
	// reproducible run to run despite map iteration order.
	type catShare struct {
		cat   string
		share float64
	}
	shares := make([]catShare, 0, len(c.Shares))
	for cat, share := range c.Shares {
		shares = append(shares, catShare{string(cat), share})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].share != shares[j].share {
			return shares[i].share > shares[j].share
		}
		return shares[i].cat < shares[j].cat
	})
	for _, cs := range shares {
		fmt.Printf("    %-20s %5.1f%%\n", cs.cat, cs.share*100)
	}
	fmt.Println("  top hotspot functions:")
	for i, h := range c.Hotspots {
		if i >= 5 {
			break
		}
		fmt.Printf("    %-55s %5.1f%% (%d calls)\n", h.Name, h.Share*100, h.Calls)
	}
	printTrace(res)
	exitOnRunError(runErr)
	if *out != "" {
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, written)
	}
}

// cmdReplay simulates entire paper-scale sessions from the calibrated
// convergence distributions and the Table 6 cost model — the
// methodology's fast path for purchasing decisions.
func cmdReplay(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "base seed; per-benchmark seeds are derived deterministically")
	out := outFlag(fs)
	opts := runOptsFlags(fs)
	id := parseWithID(fs, args)
	var ids []string
	if id != "" && id != "all" {
		if s.Benchmark(id) == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
			os.Exit(1)
		}
		ids = []string{id}
	}
	res, written, _, runErr := runPlan(s, aibench.Plan{
		Kind: aibench.RunReplay, Benchmarks: ids, Seed: *seed,
	}, *out, opts)
	aibench.RenderRunReport("replays", os.Stdout, res.Records())
	total := 0.0
	for _, r := range res.Replays {
		total += r.Hours
	}
	fmt.Printf("\ntotal replayed cost: %.2f h over %d sessions\n", total, len(res.Replays))
	printTrace(res)
	exitOnRunError(runErr)
	if *out != "" {
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, written)
	}
}

// cmdTune sweeps the tuned kernel's candidate menu on this machine and
// prints the winning tile config per (op, shape class). -out persists
// the config as a tuneconfig envelope keyed by suite SHA, GOARCH, and
// GOMAXPROCS; `run -tune-from`, `version -tune-from`, and the
// benchmark harness ($AIBENCH_TUNE_FROM) reload it. Tuning changes
// throughput only — results stay bitwise identical under every config
// — so a stale or foreign config is a perf bug, never a numbers bug.
func cmdTune(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	quick := fs.Bool("quick", false, "sweep small shapes with one timing round (CI smoke; full sweep makes better configs)")
	rounds := fs.Int("rounds", 0, "timing rounds per candidate, best kept (0 = default)")
	out := outFlag(fs)
	verbose := fs.Bool("v", false, "log each class sweep to stderr as it is timed")
	fs.Parse(args)
	opts := aibench.TuneOptions{Quick: *quick, Rounds: *rounds}
	if *verbose {
		opts.Log = os.Stderr
	}
	cfg := aibench.TuneKernels(opts)
	rec := aibench.Record{Kind: aibench.KindTuneConfig, TuneConfig: cfg}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", *out, err)
			os.Exit(1)
		}
		w := aibench.NewResultWriter(f, aibench.RunMeta{
			SuiteSHA: s.SHA(), Kernel: "tuned",
			Started: time.Now().UTC().Format(time.RFC3339),
		})
		werr := w.Write(rec)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "cannot write %s: %v\n", *out, werr)
			os.Exit(1)
		}
		fmt.Printf("tuning config streamed to %s (%d JSONL lines)\n", *out, w.Count())
	}
	aibench.RenderRunReport("tuning", os.Stdout, []aibench.Record{rec})
}

func cmdSubset(s *aibench.Suite) {
	chosen, table := s.SelectSubset()
	fmt.Printf("%-12s %-28s %-8s %-7s %-9s %s\n", "ID", "Task", "CV", "Metric", "Selected", "Rejection")
	for _, c := range table {
		cv := "N/A"
		if c.CV >= 0 {
			cv = fmt.Sprintf("%.2f%%", c.CV*100)
		}
		fmt.Printf("%-12s %-28s %-8s %-7v %-9v %s\n", c.ID, c.Task, cv, c.HasMetric, c.Selected, c.RejectionNote)
	}
	fmt.Print("\nselected subset: ")
	for _, b := range chosen {
		fmt.Printf("%s (%s)  ", b.ID, b.Task)
	}
	fmt.Println()
}

func cmdCosts(s *aibench.Suite) {
	c := s.Costs()
	fmt.Printf("AIBench full suite: %8.2f h\n", c.AIBenchFullHours)
	fmt.Printf("MLPerf suite:       %8.2f h\n", c.MLPerfHours)
	fmt.Printf("AIBench subset:     %8.2f h\n", c.SubsetHours)
	fmt.Printf("subset vs AIBench:  %8.1f%% saved (paper: 41%%)\n", c.SubsetVsAIBench*100)
	fmt.Printf("subset vs MLPerf:   %8.1f%% saved (paper: 63%%)\n", c.SubsetVsMLPerf*100)
	fmt.Printf("AIBench vs MLPerf:  %8.1f%% saved (paper: 37%%)\n", c.AIBenchVsMLPerf*100)
}

func cmdReport(s *aibench.Suite, args []string) {
	if len(args) < 1 {
		fmt.Fprintf(os.Stderr, "usage: aibench report <%v|all>\n", aibench.ReportNames())
		os.Exit(2)
	}
	names := args
	if args[0] == "all" {
		names = aibench.ReportNames()
	}
	for _, n := range names {
		if !s.Report(n, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "unknown report %q\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}
}
