// Command aibench is the suite CLI: list benchmarks, run scaled training
// sessions, characterize workloads, select the subset, and render the
// paper's tables and figures.
//
// Usage:
//
//	aibench list
//	aibench run <id> [-epochs N] [-seed S] [-quasi] [-shards N] [-kernel naive|blocked]
//	aibench run-all [-workers N] [-epochs N] [-seed S] [-quasi] [-shards N] [-kernel K] [-out results.jsonl] [-v]
//	aibench scaling [id] [-shards 1,2,4] [-epochs N] [-seed S] [-kernel K]
//	aibench characterize <id|all> [-gpu xp|rtx] [-workers N]
//	aibench subset
//	aibench costs
//	aibench report <table1..table7|figure1a..figure7|all>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"aibench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	suite := aibench.NewSuite()
	switch os.Args[1] {
	case "list":
		cmdList(suite)
	case "run":
		cmdRun(suite, os.Args[2:])
	case "run-all":
		cmdRunAll(suite, os.Args[2:])
	case "scaling":
		cmdScaling(suite, os.Args[2:])
	case "characterize":
		cmdCharacterize(suite, os.Args[2:])
	case "subset":
		cmdSubset(suite)
	case "costs":
		cmdCosts(suite)
	case "report":
		cmdReport(suite, os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: aibench <list|run|run-all|scaling|characterize|subset|costs|report> [args]")
}

// kernelFlag registers the -kernel flag shared by the training
// commands. The returned apply func selects the kernel process-wide
// (exiting on an unknown name) and must run after fs is parsed.
func kernelFlag(fs *flag.FlagSet) (apply func()) {
	names := strings.Join(aibench.KernelNames(), "|")
	kernel := fs.String("kernel", "", "compute kernel ("+names+"; default: $"+
		"AIBENCH_KERNEL or blocked)")
	return func() {
		if *kernel == "" {
			return
		}
		if err := aibench.UseKernels(*kernel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
}

// parseWithID parses fs against args accepting the positional id before,
// after, or between the flags. The flag package stops at the first
// positional argument, so the documented `aibench characterize <id>
// [-gpu rtx]` form would otherwise silently drop every flag after the
// id. Returns "" when no positional was given.
func parseWithID(fs *flag.FlagSet, args []string) string {
	id := ""
	for len(args) > 0 {
		fs.Parse(args)
		if fs.NArg() == 0 {
			break
		}
		if id == "" {
			id = fs.Arg(0)
		}
		args = fs.Args()[1:]
	}
	return id
}

func cmdList(s *aibench.Suite) {
	fmt.Printf("%-12s %-8s %-30s %-36s %s\n", "ID", "Suite", "Task", "Algorithm", "Target")
	for _, b := range s.All() {
		marker := " "
		if b.InSubset() {
			marker = "*"
		}
		fmt.Printf("%-12s %-8s %-30s %-36s %s %s\n", b.ID, b.Suite, b.Task, b.Algorithm, b.Target, marker)
	}
	fmt.Println("(* = AIBench subset member)")
}

func cmdRun(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "random seed")
	quasi := fs.Bool("quasi", false, "run a quasi-entire session (fixed epochs)")
	shards := fs.Int("shards", 0, "data-parallel shard workers (0 = serial; results are bitwise identical for any count)")
	applyKernel := kernelFlag(fs)
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench run <id> [-epochs N] [-seed S] [-quasi] [-shards N] [-kernel K]")
		os.Exit(2)
	}
	applyKernel()
	b := s.Benchmark(id)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try `aibench list`)\n", id)
		os.Exit(1)
	}
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	res := b.RunScaledSession(aibench.SessionConfig{
		Kind: kind, Seed: *seed, MaxEpochs: *epochs, Shards: *shards, Log: os.Stdout,
	})
	if res.FallbackReason != "" {
		fmt.Printf("(%s ran serial: %s)\n", b.ID, res.FallbackReason)
	}
	fmt.Printf("\n%s (%s): epochs=%d quality=%.4f target=%.4f reached=%v shards=%d kernel=%s\n",
		b.ID, res.Name, res.Epochs, res.FinalQuality, res.Target, res.ReachedGoal, res.Shards, res.Kernel)
}

func cmdRunAll(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("run-all", flag.ExitOnError)
	workers := fs.Int("workers", 0, "pool width (0 = GOMAXPROCS)")
	epochs := fs.Int("epochs", 150, "maximum epochs (entire) or exact epochs (quasi)")
	seed := fs.Int64("seed", 42, "base seed; per-benchmark seeds are derived deterministically")
	quasi := fs.Bool("quasi", false, "run quasi-entire sessions (fixed epochs)")
	shards := fs.Int("shards", 0, "data-parallel shard workers per session (0 = serial)")
	out := fs.String("out", "", "stream results to this JSONL file as sessions complete")
	verbose := fs.Bool("v", false, "stream per-epoch progress from every session")
	applyKernel := kernelFlag(fs)
	fs.Parse(args)
	applyKernel()
	kind := aibench.EntireSession
	if *quasi {
		kind = aibench.QuasiEntireSession
	}
	width := *workers
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	cfg := aibench.SessionConfig{Kind: kind, Seed: *seed, MaxEpochs: *epochs, Shards: *shards}
	if *verbose {
		cfg.Log = os.Stdout
	}

	// Interrupting a long run stops launching new sessions; sessions
	// already running finish and still reach the JSONL stream. Once the
	// first interrupt lands, default signal handling is restored so a
	// second Ctrl-C force-quits instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	context.AfterFunc(ctx, stop)

	var sink func(aibench.SessionResult)
	var outFile *os.File
	var sinkErr error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cannot create %s: %v\n", *out, err)
			os.Exit(1)
		}
		outFile = f
		enc := json.NewEncoder(f)
		sink = func(r aibench.SessionResult) {
			// Calls are serialized by the suite engine; keep the first
			// write error so a full disk can't masquerade as success.
			if err := enc.Encode(r); err != nil && sinkErr == nil {
				sinkErr = err
			}
		}
	}

	start := time.Now()
	results := s.RunAllScaledStream(ctx, cfg, width, sink)
	elapsed := time.Since(start)
	if *verbose {
		fmt.Println()
	}
	fmt.Printf("%-12s %-34s %7s %7s %9s %9s %s\n", "ID", "Name", "Epochs", "Shards", "Quality", "Target", "Reached")
	reached, ran := 0, 0
	for _, r := range results {
		if r.ID == "" {
			continue // session never launched (run interrupted)
		}
		ran++
		if r.ReachedGoal {
			reached++
		}
		fmt.Printf("%-12s %-34s %7d %7d %9.4f %9.4f %v\n",
			r.ID, r.Name, r.Epochs, r.Shards, r.FinalQuality, r.Target, r.ReachedGoal)
	}
	fmt.Printf("\n%d/%d sessions reached their target in %s (workers=%d kernel=%s)\n",
		reached, ran, elapsed.Round(time.Millisecond), width, aibench.ActiveKernel())
	if ran < len(results) {
		fmt.Printf("interrupted: %d sessions never launched\n", len(results)-ran)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil && sinkErr == nil {
			sinkErr = err
		}
		if sinkErr != nil {
			fmt.Fprintf(os.Stderr, "error writing %s: %v\n", *out, sinkErr)
			os.Exit(1)
		}
		fmt.Printf("results streamed to %s (%d JSONL lines)\n", *out, ran)
	}
}

// cmdScaling sweeps data-parallel shard counts over the shardable
// benchmarks and prints time per epoch plus speedup versus one shard.
func cmdScaling(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	shardsCSV := fs.String("shards", "1,2,4", "comma-separated shard counts to measure")
	epochs := fs.Int("epochs", 2, "epochs to time per point")
	seed := fs.Int64("seed", 42, "base seed")
	applyKernel := kernelFlag(fs)
	id := parseWithID(fs, args)
	applyKernel()
	var shards []int
	for _, tok := range strings.Split(*shardsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -shards value %q\n", tok)
			os.Exit(2)
		}
		shards = append(shards, n)
	}
	bs := s.All()
	if id != "" {
		b := s.Benchmark(id)
		if b == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
			os.Exit(1)
		}
		if !b.Shardable() {
			fmt.Fprintf(os.Stderr, "%s has no shardable train step\n", id)
			os.Exit(1)
		}
		bs = []*aibench.Benchmark{b}
	}
	rows := s.ScalingReport(bs, shards, *epochs, *seed)
	if len(rows) == 0 {
		fmt.Println("no shardable benchmarks selected")
		return
	}
	fmt.Printf("%-12s %-24s %8s %12s %9s\n", "ID", "Name", "Shards", "Sec/Epoch", "Speedup")
	for _, row := range rows {
		for i, p := range row.Points {
			id, name := row.ID, row.Name
			if i > 0 {
				id, name = "", ""
			}
			fmt.Printf("%-12s %-24s %8d %12.4f %8.2fx\n", id, name, p.Shards, p.SecPerEpoch, p.Speedup)
		}
	}
	fmt.Println("\n(identical losses at every shard count; speedup is pure scheduling gain)")
}

func cmdCharacterize(s *aibench.Suite, args []string) {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	gpu := fs.String("gpu", "xp", "device: xp (Titan XP) or rtx (Titan RTX)")
	workers := fs.Int("workers", 0, "pool width for `characterize all` (0 = GOMAXPROCS)")
	id := parseWithID(fs, args)
	if id == "" {
		fmt.Fprintln(os.Stderr, "usage: aibench characterize <id|all> [-gpu xp|rtx] [-workers N]")
		os.Exit(2)
	}
	dev := aibench.TitanXP()
	if *gpu == "rtx" {
		dev = aibench.TitanRTX()
	}
	if id == "all" {
		fmt.Printf("%-12s %-28s %12s %10s %8s %6s %6s\n", "ID", "Task", "MFLOPs", "MParams", "Epochs", "Occ", "IPC")
		for _, c := range s.CharacterizeAll(dev, *workers) {
			fmt.Printf("%-12s %-28s %12.2f %10.2f %8.1f %6.3f %6.3f\n",
				c.ID, c.Task, c.MFLOPs, c.MParams, c.Epochs,
				c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency)
		}
		return
	}
	b := s.Benchmark(id)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", id)
		os.Exit(1)
	}
	c := b.Characterize(dev)
	fmt.Printf("%s — %s on %s\n", c.ID, c.Task, dev.Name)
	fmt.Printf("  forward FLOPs: %.2f M   params: %.2f M   epochs-to-quality: %.1f\n", c.MFLOPs, c.MParams, c.Epochs)
	fmt.Printf("  occupancy=%.3f ipc=%.3f gld=%.3f gst=%.3f dram=%.3f\n",
		c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency,
		c.Metrics.GldEfficiency, c.Metrics.GstEfficiency, c.Metrics.DramUtilization)
	fmt.Println("  runtime breakdown:")
	// Sort by descending share (category name breaks ties) so output is
	// reproducible run to run despite map iteration order.
	type catShare struct {
		cat   string
		share float64
	}
	shares := make([]catShare, 0, len(c.Shares))
	for cat, share := range c.Shares {
		shares = append(shares, catShare{string(cat), share})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].share != shares[j].share {
			return shares[i].share > shares[j].share
		}
		return shares[i].cat < shares[j].cat
	})
	for _, cs := range shares {
		fmt.Printf("    %-20s %5.1f%%\n", cs.cat, cs.share*100)
	}
	fmt.Println("  top hotspot functions:")
	for i, h := range c.Hotspots {
		if i >= 5 {
			break
		}
		fmt.Printf("    %-55s %5.1f%% (%d calls)\n", h.Name, h.Share*100, h.Calls)
	}
}

func cmdSubset(s *aibench.Suite) {
	chosen, table := s.SelectSubset()
	fmt.Printf("%-12s %-28s %-8s %-7s %-9s %s\n", "ID", "Task", "CV", "Metric", "Selected", "Rejection")
	for _, c := range table {
		cv := "N/A"
		if c.CV >= 0 {
			cv = fmt.Sprintf("%.2f%%", c.CV*100)
		}
		fmt.Printf("%-12s %-28s %-8s %-7v %-9v %s\n", c.ID, c.Task, cv, c.HasMetric, c.Selected, c.RejectionNote)
	}
	fmt.Print("\nselected subset: ")
	for _, b := range chosen {
		fmt.Printf("%s (%s)  ", b.ID, b.Task)
	}
	fmt.Println()
}

func cmdCosts(s *aibench.Suite) {
	c := s.Costs()
	fmt.Printf("AIBench full suite: %8.2f h\n", c.AIBenchFullHours)
	fmt.Printf("MLPerf suite:       %8.2f h\n", c.MLPerfHours)
	fmt.Printf("AIBench subset:     %8.2f h\n", c.SubsetHours)
	fmt.Printf("subset vs AIBench:  %8.1f%% saved (paper: 41%%)\n", c.SubsetVsAIBench*100)
	fmt.Printf("subset vs MLPerf:   %8.1f%% saved (paper: 63%%)\n", c.SubsetVsMLPerf*100)
	fmt.Printf("AIBench vs MLPerf:  %8.1f%% saved (paper: 37%%)\n", c.AIBenchVsMLPerf*100)
}

func cmdReport(s *aibench.Suite, args []string) {
	if len(args) < 1 {
		fmt.Fprintf(os.Stderr, "usage: aibench report <%v|all>\n", aibench.ReportNames())
		os.Exit(2)
	}
	names := args
	if args[0] == "all" {
		names = aibench.ReportNames()
	}
	for _, n := range names {
		if !s.Report(n, os.Stdout, aibench.TitanXP(), 1) {
			fmt.Fprintf(os.Stderr, "unknown report %q\n", n)
			os.Exit(1)
		}
		fmt.Println()
	}
}
