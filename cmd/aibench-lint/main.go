// Command aibench-lint runs the suite's determinism lint
// (internal/analyzers) over Go packages: five analyzers that enforce
// the reproducibility invariants — no unordered map iteration in
// result paths, no unseeded randomness or wall-clock in deterministic
// packages, ctx checked in every epoch loop, tensor math behind the
// kernel dispatch, sink errors never dropped — at build time, before
// the code ever runs.
//
// Usage:
//
//	aibench-lint [-list] [-only a,b] [-scope-all] [packages]
//
// With no packages, ./... is checked. The exit status is 1 when any
// diagnostic survives (suppressions via //lint:allow <analyzer>
// <reason> are honoured), 2 on a driver error, 0 on a clean tree.
//
// -scope-all disregards the per-package scope config and applies every
// analyzer to every package; CI uses it to prove the lint gate fails
// on a deliberately-seeded violation in a scratch module whose import
// paths are not aibench's.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aibench/internal/analyzers"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	scopeAll := flag.Bool("scope-all", false, "apply every analyzer to every package, ignoring the scope config")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aibench-lint [-list] [-only a,b] [-scope-all] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All()
	if *only != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "aibench-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aibench-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analyzers.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aibench-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analyzers.Run(pkgs, suite, *scopeAll)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aibench-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aibench-lint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
