// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each bench regenerates the rows/series the
// paper reports and publishes the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation.
package aibench_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"testing"

	"aibench"
	"aibench/internal/core"
	"aibench/internal/gpusim"
	"aibench/internal/tensor"
)

// characterizeAll profiles bs on dev through a Plan runner — the
// benches' replacement for the retired CharacterizeAll facades.
func characterizeAll(tb testing.TB, s *aibench.Suite, bs []*aibench.Benchmark, dev aibench.Device) []aibench.Characterization {
	tb.Helper()
	ids := make([]string, len(bs))
	for i, b := range bs {
		ids[i] = b.ID
	}
	runner, err := s.NewRunner(aibench.Plan{Kind: aibench.RunCharacterize, Benchmarks: ids, Device: dev})
	if err != nil {
		tb.Fatal(err)
	}
	res, err := runner.Run(context.Background(), nil)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Characterizations
}

// BenchmarkTable1 regenerates the suite comparison matrix.
func BenchmarkTable1(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("table1", io.Discard, aibench.TitanXP(), 1)
	}
	aiTasks := 0
	for _, row := range core.Table1() {
		if row.AIBench {
			aiTasks++
		}
	}
	b.ReportMetric(float64(aiTasks), "aibench_tasks")
}

// BenchmarkTable2 regenerates the Internet-service scenario mapping.
func BenchmarkTable2(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("table2", io.Discard, aibench.TitanXP(), 1)
	}
	b.ReportMetric(float64(len(core.Table2())), "scenarios")
}

// BenchmarkTable3 regenerates the component-benchmark roster.
func BenchmarkTable3(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("table3", io.Discard, aibench.TitanXP(), 1)
	}
	b.ReportMetric(float64(len(suite.AIBench())), "component_benchmarks")
}

// BenchmarkTable4 regenerates the hardware configuration.
func BenchmarkTable4(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("table4", io.Discard, aibench.TitanXP(), 1)
	}
	b.ReportMetric(aibench.TitanXP().PeakGFLOPs(), "xp_peak_gflops")
	b.ReportMetric(aibench.TitanRTX().PeakGFLOPs(), "rtx_peak_gflops")
}

// BenchmarkTable5 reproduces the run-to-run variation measurements.
func BenchmarkTable5(b *testing.B) {
	suite := aibench.NewSuite()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, bench := range suite.AIBench() {
			res := bench.MeasureVariation(1234)
			if res.Measured > worst {
				worst = res.Measured
			}
		}
	}
	// Paper: variation ranges 0%..38.46%; 3D Face Recognition largest.
	b.ReportMetric(worst*100, "max_cv_pct")
	c8 := suite.Benchmark("DC-AI-C8").MeasureVariation(1234)
	b.ReportMetric(c8.Measured*100, "face3d_cv_pct_paper_38.46")
	c9 := suite.Benchmark("DC-AI-C9").MeasureVariation(1234)
	b.ReportMetric(c9.Measured*100, "objdet_cv_pct_paper_0")
}

// BenchmarkTable6 reproduces the training-cost table and the simulated
// epoch times on the TITAN RTX.
func BenchmarkTable6(b *testing.B) {
	suite := aibench.NewSuite()
	dev := aibench.TitanRTX()
	var simIC float64
	for i := 0; i < b.N; i++ {
		ic := suite.Benchmark("DC-AI-C1")
		simIC = gpusim.EpochTime(ic.Spec(), ic.DatasetSamples, ic.BatchSize, dev)
	}
	// Paper: Image Classification epoch = 10516.91 s on the Titan RTX.
	b.ReportMetric(simIC, "sim_ic_epoch_s_paper_10516")
	c := suite.Costs()
	b.ReportMetric(c.AIBenchFullHours, "aibench_hours_paper_225")
	b.ReportMetric(c.MLPerfHours, "mlperf_hours_paper_362")
}

// BenchmarkTable7 reproduces the hotspot-function census.
func BenchmarkTable7(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("table7", io.Discard, aibench.TitanXP(), 1)
	}
	cs := characterizeAll(b, suite, suite.AIBench(), aibench.TitanXP())
	names := map[string]bool{}
	for _, c := range cs {
		for _, h := range c.Hotspots {
			names[h.Name] = true
		}
	}
	b.ReportMetric(float64(len(names)), "distinct_functions")
}

// BenchmarkFigure1a reproduces the coverage comparison and its peak
// ratios (paper: 1.3x..6.4x).
func BenchmarkFigure1a(b *testing.B) {
	suite := aibench.NewSuite()
	dev := aibench.TitanXP()
	var f, p, e float64
	for i := 0; i < b.N; i++ {
		ai := core.CoverageOf(characterizeAll(b, suite, suite.AIBench(), dev))
		ml := core.CoverageOf(characterizeAll(b, suite, suite.MLPerf(), dev))
		f, p, e = core.PeakRatios(ai, ml)
	}
	b.ReportMetric(f, "flops_peak_ratio")
	b.ReportMetric(p, "params_peak_ratio")
	b.ReportMetric(e, "epochs_peak_ratio")
}

// BenchmarkFigure2 reproduces the epochs-vs-FLOPs scatter.
func BenchmarkFigure2(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("figure2", io.Discard, aibench.TitanXP(), 1)
	}
	od := suite.Characterize("DC-AI-C9", aibench.TitanXP())
	ltr := suite.Characterize("DC-AI-C16", aibench.TitanXP())
	// Paper: FLOPs range 0.09 .. 157802 M-FLOPs.
	b.ReportMetric(od.MFLOPs, "max_mflops_paper_157802")
	b.ReportMetric(ltr.MFLOPs, "min_mflops_paper_0.09")
}

// BenchmarkFigure3 reproduces the 24 micro-architectural radars.
func BenchmarkFigure3(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("figure3", io.Discard, aibench.TitanXP(), 1)
	}
	cs := characterizeAll(b, suite, suite.All(), aibench.TitanXP())
	lo, hi := 1.0, 0.0
	for _, c := range cs {
		v := c.Metrics.IPCEfficiency
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	// Paper: IPC efficiency spans ~0.25 (learning to rank) to ~0.77.
	b.ReportMetric(lo, "min_ipc_eff_paper_0.25")
	b.ReportMetric(hi, "max_ipc_eff_paper_0.77")
}

// BenchmarkFigure4 reproduces the t-SNE clustering and subset coverage.
func BenchmarkFigure4(b *testing.B) {
	suite := aibench.NewSuite()
	var res aibench.ClusterResult
	for i := 0; i < b.N; i++ {
		res = suite.Cluster(3, 1)
	}
	covers := 0.0
	if res.SubsetCoversAll {
		covers = 1
	}
	b.ReportMetric(covers, "subset_covers_all_clusters")
	b.ReportMetric(res.Silhouette, "silhouette")
}

// BenchmarkFigure5 reproduces the runtime breakdown.
func BenchmarkFigure5(b *testing.B) {
	suite := aibench.NewSuite()
	for i := 0; i < b.N; i++ {
		suite.Report("figure5", io.Discard, aibench.TitanXP(), 1)
	}
	// Paper: learning to rank spends outsized time in element-wise /
	// data-arrangement kernels rather than convolutions.
	ltr := suite.Characterize("DC-AI-C16", aibench.TitanXP())
	b.ReportMetric(ltr.Shares[gpusim.Elementwise]*100, "ltr_elementwise_pct")
	ic := suite.Characterize("DC-AI-C1", aibench.TitanXP())
	b.ReportMetric(ic.Shares[gpusim.Convolution]*100, "ic_conv_pct")
}

// BenchmarkFigure6 reproduces the hotspot histogram (paper: 30 vs 9
// functions above 10% of runtime).
func BenchmarkFigure6(b *testing.B) {
	suite := aibench.NewSuite()
	var ai, ml [4]int
	for i := 0; i < b.N; i++ {
		ai = core.HotspotHistogram(characterizeAll(b, suite, suite.AIBench(), aibench.TitanXP()))
		ml = core.HotspotHistogram(characterizeAll(b, suite, suite.MLPerf(), aibench.TitanXP()))
	}
	b.ReportMetric(float64(ai[2]+ai[3]), "aibench_over10pct_paper_30")
	b.ReportMetric(float64(ml[2]+ml[3]), "mlperf_over10pct_paper_9")
}

// BenchmarkFigure7 reproduces the stall breakdown (paper: element-wise
// kernels ≈70% memory-dependency stalls).
func BenchmarkFigure7(b *testing.B) {
	suite := aibench.NewSuite()
	var ew gpusim.StallBreakdown
	for i := 0; i < b.N; i++ {
		stalls := aibench.NewSuite().Benchmark("DC-AI-C16").Characterize(aibench.TitanXP()).Stalls
		ew = stalls[gpusim.Elementwise]
	}
	_ = suite
	b.ReportMetric(ew.MemDepend*100, "elementwise_memdep_pct_paper_70")
	b.ReportMetric(ew.ExecDepend*100, "elementwise_execdep_pct")
}

// BenchmarkSubsetSavings reproduces the Section 5.4.2 headline numbers.
func BenchmarkSubsetSavings(b *testing.B) {
	suite := aibench.NewSuite()
	var c aibench.CostSummary
	for i := 0; i < b.N; i++ {
		c = suite.Costs()
	}
	b.ReportMetric(c.SubsetVsAIBench*100, "subset_vs_aibench_pct_paper_41")
	b.ReportMetric(c.SubsetVsMLPerf*100, "subset_vs_mlperf_pct_paper_63")
	b.ReportMetric(c.AIBenchVsMLPerf*100, "aibench_vs_mlperf_pct_paper_37")
}

// TestMain applies $AIBENCH_TUNE_FROM before any benchmark runs, so CI
// can measure the tuned kernel under the config a `aibench tune` sweep
// just persisted instead of the builtin defaults.
func TestMain(m *testing.M) {
	if path := os.Getenv(aibench.EnvTuneFrom); path != "" {
		if _, err := aibench.LoadTuning(path); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", aibench.EnvTuneFrom, err)
			os.Exit(1)
		}
	}
	os.Exit(m.Run())
}

// benchKernels lists the kernels a compute benchmark sweeps: every
// registered kernel by default, or only $AIBENCH_KERNEL when CI pins
// one (the sub-benchmark names carry kernel=<name> either way, so the
// perf trajectory separates kernel wins from orchestration wins).
func benchKernels() []string {
	if k := os.Getenv(tensor.EnvKernel); k != "" {
		return []string{k}
	}
	return tensor.KernelNames()
}

// underKernel runs fn with the named compute kernel active, restoring
// the previous selection afterwards.
func underKernel(b *testing.B, name string, fn func(b *testing.B)) {
	prev := aibench.ActiveKernel()
	if err := aibench.UseKernels(name); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := aibench.UseKernels(prev); err != nil {
			b.Fatal(err)
		}
	}()
	b.Run("kernel="+name, fn)
}

// BenchmarkMatMul sweeps GEMM shapes under each compute kernel — the
// suite's hottest primitive, and the headline number for the blocked
// kernel (target: ≥1.5× over naive at 512) and the tuned kernel
// (target: ≥ blocked at 512 under a tuned config). Square sizes keep
// their historical n=<N> names; the skinny (inner-product-dominated)
// and fat (outer-product-dominated) shapes exercise the tuned tier's
// non-square shape classes. GFLOPS counts a multiply-add as two
// floating-point operations.
func BenchmarkMatMul(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"n=128", 128, 128, 128},
		{"n=256", 256, 256, 256},
		{"n=512", 512, 512, 512},
		{"n=1024", 1024, 1024, 1024},
		{"skinny=64x2048x64", 64, 2048, 64},
		{"fat=2048x64x2048", 2048, 64, 2048},
	}
	for _, kname := range benchKernels() {
		underKernel(b, kname, func(b *testing.B) {
			for _, sh := range shapes {
				b.Run(sh.name, func(b *testing.B) {
					rng := rand.New(rand.NewSource(7))
					x := tensor.Randn(rng, 0, 1, sh.m, sh.k)
					y := tensor.Randn(rng, 0, 1, sh.k, sh.n)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						tensor.MatMul(x, y)
					}
					flops := 2 * float64(sh.m) * float64(sh.k) * float64(sh.n)
					b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
				})
			}
		})
	}
}

// BenchmarkConv2D measures the im2col-GEMM convolution under each
// compute kernel at a ResNet-block-like geometry.
func BenchmarkConv2D(b *testing.B) {
	for _, kname := range benchKernels() {
		underKernel(b, kname, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			x := tensor.Randn(rng, 0, 1, 8, 32, 32, 32)
			w := tensor.Randn(rng, 0, 1, 64, 32, 3, 3)
			p := tensor.Conv2DParams{Kernel: 3, Stride: 1, Padding: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.Conv2D(x, w, p)
			}
		})
	}
}

// BenchmarkSuiteScaled measures a full 24-benchmark quasi-entire suite
// pass through the real training stack: the serial loop baseline
// against the pooled engine at several widths. On a 4+ core machine
// workers-4 should run at least 2x faster wall-clock than serial-loop,
// with bitwise-identical results (TestRunAllScaledMatchesSerialLoop).
func BenchmarkSuiteScaled(b *testing.B) {
	cfg := aibench.SessionConfig{Kind: aibench.QuasiEntireSession, MaxEpochs: 1, Seed: 42}
	b.Run("serial-loop", func(b *testing.B) {
		suite := aibench.NewSuite()
		for i := 0; i < b.N; i++ {
			for _, bench := range suite.All() {
				c := cfg
				c.Seed = aibench.DeriveSeed(cfg.Seed, bench.ID)
				bench.RunScaledSession(c)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			suite := aibench.NewSuite()
			runner, err := suite.NewRunner(aibench.Plan{
				Kind: aibench.RunSession, Session: cfg.Kind, Seed: cfg.Seed,
				Epochs: cfg.MaxEpochs, Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCharacterizeAllWorkers measures the pooled characterization
// of all 24 paper-scale models.
func BenchmarkCharacterizeAllWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			suite := aibench.NewSuite()
			runner, err := suite.NewRunner(aibench.Plan{
				Kind: aibench.RunCharacterize, Device: aibench.TitanXP(), Workers: workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaledTrainingEpoch measures one real scaled training epoch of
// each subset benchmark through the full autograd stack.
func BenchmarkScaledTrainingEpoch(b *testing.B) {
	for _, id := range []string{"DC-AI-C1", "DC-AI-C9", "DC-AI-C16"} {
		id := id
		b.Run(id, func(b *testing.B) {
			w := aibench.NewSuite().Benchmark(id).Factory(42)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.TrainEpoch()
			}
		})
	}
}

// BenchmarkSimulatedIteration measures the GPU-simulator lowering and
// execution cost for the two detection-scale models.
func BenchmarkSimulatedIteration(b *testing.B) {
	suite := aibench.NewSuite()
	for _, id := range []string{"DC-AI-C1", "DC-AI-C9"} {
		id := id
		bench := suite.Benchmark(id)
		spec := bench.Spec()
		b.Run(id, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = gpusim.IterationTime(spec, bench.BatchSize, aibench.TitanXP())
			}
			b.ReportMetric(t*1000, "sim_iter_ms")
		})
	}
}
