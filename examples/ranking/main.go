// Ranking example: the purchasing/ranking use case of the methodology —
// compare two systems (TITAN XP vs TITAN RTX) by running entire
// simulated training sessions of the subset, then sanity-check the
// verdict with quasi-entire sweeps over the full suite, exactly the
// two-tier protocol Section 3.4 prescribes.
package main

import (
	"context"
	"fmt"
	"os"

	"aibench"
	"aibench/internal/gpusim"
)

func main() {
	suite := aibench.NewSuite()
	devices := []aibench.Device{aibench.TitanXP(), aibench.TitanRTX()}

	fmt.Println("System ranking with the AIBench subset (simulated entire sessions)")
	totals := make([]float64, len(devices))
	for _, b := range suite.Subset() {
		fmt.Printf("\n%s — %s:\n", b.ID, b.Task)
		for di, dev := range devices {
			epoch := gpusim.EpochTime(b.Spec(), b.DatasetSamples, b.BatchSize, dev)
			hours := epoch * b.ConvergeEpochs / 3600
			totals[di] += hours
			fmt.Printf("  %-18s %8.2f s/epoch  -> %7.2f h to quality\n", dev.Name, epoch, hours)
		}
	}
	fmt.Println()
	for di, dev := range devices {
		fmt.Printf("%-18s subset total: %7.2f h\n", dev.Name, totals[di])
	}
	speedup := totals[0] / totals[1]
	fmt.Printf("verdict: %s is %.2fx faster on the subset\n", devices[1].Name, speedup)

	// Full-suite quasi-entire cross-check (one iteration per benchmark):
	// the methodology's guard against benchmarketing.
	fmt.Println("\nfull-suite quasi-entire cross-check (per-iteration time ratio):")
	agree := 0
	for _, b := range suite.AIBench() {
		tXP := gpusim.IterationTime(b.Spec(), b.BatchSize, devices[0])
		tRTX := gpusim.IterationTime(b.Spec(), b.BatchSize, devices[1])
		r := tXP / tRTX
		if r > 1 {
			agree++
		}
		fmt.Printf("  %-11s RTX speedup %.2fx\n", b.ID, r)
	}
	fmt.Printf("%d/17 benchmarks agree with the subset verdict\n", agree)

	// The unified Plan/Runner API replays entire paper-scale sessions
	// (calibrated epochs-to-quality × the Table 6 cost model) in
	// milliseconds — the repeatable artifact behind a purchase report,
	// persistable as JSONL and rebuildable with `aibench-report -from`.
	ids := make([]string, 0, 3)
	for _, b := range suite.Subset() {
		ids = append(ids, b.ID)
	}
	runner, err := suite.NewRunner(aibench.Plan{Kind: aibench.RunReplay, Benchmarks: ids, Seed: 7})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := runner.Run(context.Background(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("\nreplayed entire sessions of the subset (unified Plan/Runner API):")
	for _, r := range res.Replays {
		fmt.Printf("  %-11s %6.1f epochs -> %7.2f h\n", r.ID, r.Epochs, r.Hours)
	}
}
