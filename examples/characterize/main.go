// Workload characterization example: the early-design-stage use case the
// paper's methodology motivates. A single Plan profiles three
// architecturally distinct benchmarks on the simulated TITAN XP, then
// prints their model characteristics, micro-architectural radar,
// runtime breakdown, and hotspot functions side by side.
package main

import (
	"context"
	"fmt"
	"os"

	"aibench"
)

func main() {
	suite := aibench.NewSuite()
	dev := aibench.TitanXP()
	ids := []string{"DC-AI-C1", "DC-AI-C6", "DC-AI-C16"} // CNN vs RNN vs embedding-MLP

	runner, err := suite.NewRunner(aibench.Plan{
		Kind:       aibench.RunCharacterize,
		Benchmarks: ids,
		Device:     dev,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := runner.Run(context.Background(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Workload characterization on %s\n\n", dev.Name)
	for _, c := range res.Characterizations {
		fmt.Printf("== %s — %s ==\n", c.ID, c.Task)
		fmt.Printf("  model: %.1f M-FLOPs/sample, %.2f M params, ~%.0f epochs to quality\n",
			c.MFLOPs, c.MParams, c.Epochs)
		fmt.Printf("  radar: occ=%.2f ipc=%.2f gld=%.2f gst=%.2f dram=%.2f\n",
			c.Metrics.AchievedOccupancy, c.Metrics.IPCEfficiency,
			c.Metrics.GldEfficiency, c.Metrics.GstEfficiency, c.Metrics.DramUtilization)
		fmt.Printf("  breakdown:")
		for cat, s := range c.Shares {
			if s >= 0.02 {
				fmt.Printf(" %s=%.0f%%", cat, s*100)
			}
		}
		fmt.Println()
		fmt.Printf("  top hotspots:\n")
		for i, h := range c.Hotspots {
			if i >= 3 {
				break
			}
			fmt.Printf("    %-55s %5.1f%%\n", h.Name, h.Share*100)
		}
		fmt.Println()
	}

	fmt.Println("The three benchmarks expose distinct computation and memory access")
	fmt.Println("patterns: conv-dominated, GEMM/recurrent, and element-wise-bound —")
	fmt.Println("the diversity argument behind the full seventeen-benchmark suite.")
}
