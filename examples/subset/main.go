// Subset-selection example: reproduce the Section 5.4 methodology end to
// end — apply the selection criteria, validate the choice with the
// Fig 4 clustering, and print the benchmarking-cost savings.
package main

import (
	"context"
	"fmt"
	"os"

	"aibench"
)

func main() {
	suite := aibench.NewSuite()

	chosen, table := suite.SelectSubset()
	fmt.Println("Subset selection (criteria: diversity coverage, CV < 2%, accepted metric):")
	for _, c := range table {
		status := "  "
		if c.Selected {
			status = "->"
		}
		note := c.RejectionNote
		if note == "" && !c.Selected {
			note = "eligible, redundant coverage"
		}
		cv := "  N/A"
		if c.CV >= 0 {
			cv = fmt.Sprintf("%5.2f%%", c.CV*100)
		}
		fmt.Printf(" %s %-11s %-28s CV=%s bins(F/P/E)=%d/%d/%d %s\n",
			status, c.ID, c.Task, cv, c.FLOPsBin, c.ParamsBin, c.EpochsBin, note)
	}
	fmt.Print("\nchosen: ")
	for _, b := range chosen {
		fmt.Printf("%s ", b.Task)
	}
	fmt.Println("(paper: Image Classification, Object Detection, Learning to Rank)")

	// Fig 4 validation: the subset must cover all three behaviour
	// clusters.
	res := suite.Cluster(3, 1)
	fmt.Printf("\ncluster validation: k=%d silhouette=%.3f subset-covers-all=%v\n",
		res.K, res.Silhouette, res.SubsetCoversAll)
	for id, cl := range res.SubsetClusters {
		fmt.Printf("  %s -> cluster %d\n", id, cl)
	}
	if !res.SubsetCoversAll {
		fmt.Fprintln(os.Stderr, "subset does not cover all clusters")
		os.Exit(1)
	}

	c := suite.Costs()
	fmt.Printf("\ncost: subset %.0f h vs full %.0f h (%.0f%% saved; paper 41%%)\n",
		c.SubsetHours, c.AIBenchFullHours, c.SubsetVsAIBench*100)

	// Cross-check the cost table against replayed entire sessions of
	// the chosen subset through the unified Plan/Runner API: summed
	// replay hours should land near the analytic subset cost.
	ids := make([]string, len(chosen))
	for i, b := range chosen {
		ids[i] = b.ID
	}
	runner, err := suite.NewRunner(aibench.Plan{Kind: aibench.RunReplay, Benchmarks: ids, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	replayed, err := runner.Run(context.Background(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := 0.0
	for _, r := range replayed.Replays {
		total += r.Hours
	}
	fmt.Printf("replayed subset sessions: %.0f h (analytic table: %.0f h)\n", total, c.SubsetHours)
}
