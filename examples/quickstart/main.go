// Quickstart: run an entire scaled training session of the AIBench
// subset's cheapest member (Learning to Rank) and of Image
// Classification, then print the session summaries — the minimal
// end-to-end tour of the public API.
package main

import (
	"fmt"
	"os"

	"aibench"
)

func main() {
	suite := aibench.NewSuite()

	fmt.Println("AIBench Training quickstart: scaled entire training sessions")
	fmt.Println()
	for _, id := range []string{"DC-AI-C16", "DC-AI-C1"} {
		b := suite.Benchmark(id)
		fmt.Printf("== %s: %s (%s on %s) ==\n", b.ID, b.Task, b.Algorithm, b.Dataset)
		res := b.RunScaledSession(aibench.SessionConfig{
			Kind:      aibench.EntireSession,
			Seed:      42,
			MaxEpochs: 80,
		})
		status := "converged"
		if !res.ReachedGoal {
			status = "did not converge"
		}
		fmt.Printf("  %s after %d epochs: quality %.4f (target %.4f)\n",
			status, res.Epochs, res.FinalQuality, res.Target)
		fmt.Printf("  first-epoch loss %.4f -> last-epoch loss %.4f\n\n",
			res.Losses[0], res.Losses[len(res.Losses)-1])
	}

	// The same API drives the methodology-level queries.
	c := suite.Costs()
	fmt.Printf("benchmarking cost: full suite %.0f h, subset %.0f h (%.0f%% saved)\n",
		c.AIBenchFullHours, c.SubsetHours, c.SubsetVsAIBench*100)
	if c.SubsetVsAIBench < 0.35 {
		fmt.Fprintln(os.Stderr, "unexpected cost arithmetic")
		os.Exit(1)
	}
}
