// Quickstart: declare a Plan, validate it into a Runner, and run entire
// scaled training sessions of the AIBench subset's cheapest member
// (Learning to Rank) and of Image Classification — the minimal
// end-to-end tour of the unified execution API.
package main

import (
	"context"
	"fmt"
	"os"

	"aibench"
)

func main() {
	suite := aibench.NewSuite()

	fmt.Println("AIBench Training quickstart: scaled entire training sessions")
	fmt.Println()

	// One Plan runs any selection of benchmarks through one engine;
	// NewRunner validates ids, kernel, and shape up front.
	runner, err := suite.NewRunner(aibench.Plan{
		Kind:       aibench.RunSession,
		Benchmarks: []string{"DC-AI-C16", "DC-AI-C1"},
		Session:    aibench.EntireSession,
		Seed:       42,
		Epochs:     80,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := runner.Run(context.Background(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, r := range res.Sessions {
		b := suite.Benchmark(r.ID)
		fmt.Printf("== %s: %s (%s on %s) ==\n", b.ID, b.Task, b.Algorithm, b.Dataset)
		status := "converged"
		if !r.ReachedGoal {
			status = "did not converge"
		}
		fmt.Printf("  %s after %d epochs: quality %.4f (target %.4f)\n",
			status, r.Epochs, r.FinalQuality, r.Target)
		fmt.Printf("  first-epoch loss %.4f -> last-epoch loss %.4f\n\n",
			r.Losses[0], r.Losses[len(r.Losses)-1])
	}

	// The same API drives the methodology-level queries.
	c := suite.Costs()
	fmt.Printf("benchmarking cost: full suite %.0f h, subset %.0f h (%.0f%% saved)\n",
		c.AIBenchFullHours, c.SubsetHours, c.SubsetVsAIBench*100)
	if c.SubsetVsAIBench < 0.35 {
		fmt.Fprintln(os.Stderr, "unexpected cost arithmetic")
		os.Exit(1)
	}
}
