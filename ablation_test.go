// Ablation benches for the design choices DESIGN.md calls out: how the
// subset size trades cost against coverage, what the small-batch splitK
// path contributes to detector signatures, how batch size moves the
// micro-architectural metrics, and what the quasi-entire shortcut saves
// relative to entire sessions.
package aibench_test

import (
	"math/rand"
	"testing"

	"aibench"
	"aibench/internal/cluster"
	"aibench/internal/core"
	"aibench/internal/gpusim"
	"aibench/internal/stats"
)

// BenchmarkAblationSubsetSize sweeps the subset size k = 1..5 and
// reports the cost saving and cluster coverage at each size — the
// justification for the paper's choice of exactly three.
func BenchmarkAblationSubsetSize(b *testing.B) {
	suite := aibench.NewSuite()
	cs := characterizeAll(b, suite, suite.AIBench(), aibench.TitanXP())
	_, vecs := core.MetricVectors(cs)
	for d := 0; d < len(vecs[0]); d++ {
		col := make([]float64, len(vecs))
		for i := range vecs {
			col[i] = vecs[i][d]
		}
		stats.Normalize(col)
		for i := range vecs {
			vecs[i][d] = col[i]
		}
	}
	full := suite.Costs().AIBenchFullHours

	for k := 1; k <= 5; k++ {
		k := k
		b.Run(sizeName(k), func(b *testing.B) {
			var saving, coverage float64
			for i := 0; i < b.N; i++ {
				// Greedy cheapest-first selection among eligible
				// benchmarks that extends k-means coverage.
				rng := rand.New(rand.NewSource(1))
				assign, _ := cluster.KMeans(rng, vecs, k, 100)
				chosenHours := 0.0
				seen := map[int]bool{}
				for ci, bench := range suite.AIBench() {
					if bench.TotalHours <= 0 || !bench.HasAcceptedMetric {
						continue
					}
					if !seen[assign[ci]] && len(seen) < k {
						seen[assign[ci]] = true
						chosenHours += bench.TotalHours
					}
				}
				saving = 1 - chosenHours/full
				coverage = float64(len(seen)) / float64(k)
			}
			b.ReportMetric(saving*100, "cost_saving_pct")
			b.ReportMetric(coverage*100, "cluster_coverage_pct")
		})
	}
}

func sizeName(k int) string { return string(rune('0'+k)) + "-benchmarks" }

// BenchmarkAblationBatchSize sweeps batch size for the Image
// Classification spec and reports how occupancy and iteration time move
// — the effect behind the batch-1 detector signatures of Fig 3.
func BenchmarkAblationBatchSize(b *testing.B) {
	suite := aibench.NewSuite()
	spec := suite.Benchmark("DC-AI-C1").Spec()
	for _, batch := range []int{1, 8, 32, 128} {
		batch := batch
		b.Run(batchName(batch), func(b *testing.B) {
			var p *gpusim.Profile
			for i := 0; i < b.N; i++ {
				p = gpusim.Run(spec, batch, true, gpusim.TitanXP())
			}
			m := p.WeightedMetrics()
			b.ReportMetric(m.AchievedOccupancy, "occupancy")
			b.ReportMetric(p.TotalTime*1e3/float64(batch), "ms_per_sample")
			b.ReportMetric(p.CategoryShares()[gpusim.DataArrangement]*100, "data_arrange_pct")
		})
	}
}

func batchName(n int) string {
	switch n {
	case 1:
		return "batch1"
	case 8:
		return "batch8"
	case 32:
		return "batch32"
	default:
		return "batch128"
	}
}

// BenchmarkAblationQuasiVsEntire compares the scaled cost of
// quasi-entire (fixed 3-epoch) sessions against entire sessions for the
// subset — the Section 3.4 trade-off in miniature.
func BenchmarkAblationQuasiVsEntire(b *testing.B) {
	b.Run("quasi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			suite := aibench.NewSuite()
			suite.Benchmark("DC-AI-C16").RunScaledSession(aibench.SessionConfig{
				Kind: aibench.QuasiEntireSession, Seed: 42, MaxEpochs: 3,
			})
		}
	})
	b.Run("entire", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			suite := aibench.NewSuite()
			suite.Benchmark("DC-AI-C16").RunScaledSession(aibench.SessionConfig{
				Kind: aibench.EntireSession, Seed: 42, MaxEpochs: 60,
			})
		}
	})
}

// BenchmarkAblationDeviceScaling measures the simulated RTX/XP speedup
// across three workload families — the purchasing-decision signal the
// ranking example builds on.
func BenchmarkAblationDeviceScaling(b *testing.B) {
	suite := aibench.NewSuite()
	for _, id := range []string{"DC-AI-C1", "DC-AI-C6", "DC-AI-C16"} {
		id := id
		bench := suite.Benchmark(id)
		spec := bench.Spec()
		b.Run(id, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				xp := gpusim.IterationTime(spec, bench.BatchSize, gpusim.TitanXP())
				rtx := gpusim.IterationTime(spec, bench.BatchSize, gpusim.TitanRTX())
				ratio = xp / rtx
			}
			b.ReportMetric(ratio, "rtx_speedup")
		})
	}
}
