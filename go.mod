module aibench

go 1.24
