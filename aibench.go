// Package aibench is the public API of the AIBench Training
// reproduction: a balanced industry-standard AI training benchmark
// suite (Tang et al., ISPASS 2021) implemented as a pure-Go library.
//
// The suite contains the seventeen AIBench component benchmarks
// (DC-AI-C1..C17) and the seven MLPerf Training benchmarks the paper
// compares against. Each benchmark couples a scaled, executable model —
// trained end-to-end through the library's own tensor/autograd/NN
// stack on synthetic datasets — with the paper-scale architecture used
// for analytic characterization and GPU-simulator profiling.
//
// Typical use — declare a Plan, validate it into a Runner, run it:
//
//	suite := aibench.NewSuite()
//	runner, err := suite.NewRunner(aibench.Plan{
//	    Kind:       aibench.RunSession,
//	    Benchmarks: []string{"DC-AI-C1"},
//	    Session:    aibench.EntireSession,
//	    Seed:       42,
//	})
//	if err != nil { ... }
//	res, err := runner.Run(context.Background(), nil)
//	fmt.Printf("reached %v in %d epochs\n", res.Sessions[0].ReachedGoal, res.Sessions[0].Epochs)
//
// The same Plan shape executes every run kind of the methodology —
// training sessions, characterizations, scaling sweeps, and replayed
// paper-scale sessions — through one context-aware engine, and every
// record it emits can be persisted as versioned JSONL and replayed
// into reports without re-running anything (cmd/aibench-report -from).
//
// The report renderers regenerate every table and figure of the
// paper's evaluation section; see cmd/aibench-report.
package aibench

import (
	"io"
	"runtime"

	"aibench/internal/core"
	"aibench/internal/dist"
	"aibench/internal/gpusim"
	"aibench/internal/results"
	"aibench/internal/telemetry"
	"aibench/internal/tensor"
	"aibench/internal/tune"
)

// Suite is the top-level handle: the benchmark registry plus the
// methodology operations (sessions, subset selection, characterization,
// cost accounting, reporting).
type Suite struct {
	reg *core.Registry
}

// NewSuite builds the suite with all 24 benchmarks registered.
func NewSuite() *Suite { return &Suite{reg: core.NewRegistry()} }

// Re-exported core types.
type (
	// Benchmark is one component benchmark (metadata + scaled workload).
	Benchmark = core.Benchmark
	// SessionConfig configures a scaled training session.
	SessionConfig = core.SessionConfig
	// SessionResult reports a scaled training session.
	SessionResult = core.SessionResult
	// Characterization is one benchmark's workload characterization.
	Characterization = core.Characterization
	// ClusterResult is the Fig 4 clustering outcome.
	ClusterResult = core.ClusterResult
	// CostSummary aggregates the benchmarking-cost comparison.
	CostSummary = core.CostSummary
	// VariationResult is one Table 5 run-to-run variation row.
	VariationResult = core.VariationResult
	// SubsetCandidate is one row of the subset-selection scoring.
	SubsetCandidate = core.SubsetCandidate
	// ScalingRow is one benchmark's data-parallel scaling measurement.
	ScalingRow = core.ScalingRow
	// ScalingPoint is one shard count of a scaling measurement.
	ScalingPoint = core.ScalingPoint
	// ReplaySession is one simulated paper-scale session.
	ReplaySession = core.ReplaySession
	// Device describes a simulated GPU.
	Device = gpusim.Device

	// Plan declares what to run: benchmark selection, run kind, epochs,
	// seed, shards, kernel, workers. Validate it with Suite.NewRunner.
	Plan = core.Plan
	// Runner executes a validated Plan through one context-aware engine.
	Runner = core.Runner
	// RunKind selects a Plan's run shape.
	RunKind = core.RunKind
	// RunResult collects the records a run produced.
	RunResult = core.RunResult
	// Record is the typed union of everything a run emits.
	Record = core.Record
	// RecordKind tags a Record's payload.
	RecordKind = core.RecordKind
	// RunMeta identifies the run behind a persisted result envelope.
	RunMeta = core.RunMeta
	// Trace is a telemetry run's deterministic plane: the canonical span
	// tree plus the counter snapshot, byte-identical across seeded runs.
	Trace = telemetry.Trace
	// RunMetrics is a telemetry run's wall-clock plane (span timings,
	// pool stats, GC/heap gauges), excluded from result comparison.
	RunMetrics = telemetry.RunMetrics
	// TuneConfig is one machine's tuned-kernel configuration: the
	// per-(op, shape-class) tile winners an `aibench tune` sweep found,
	// persisted as a `tuneconfig` envelope and reloaded via
	// Plan.TuneFrom / LoadTuning.
	TuneConfig = tune.Config
	// TuneEntry is one (op, shape-class) winner inside a TuneConfig.
	TuneEntry = tune.Entry
	// TuneOptions control a TuneKernels sweep.
	TuneOptions = tune.Options
)

// The run kinds a Plan can execute.
const (
	// RunSession trains real scaled sessions.
	RunSession = core.RunSession
	// RunCharacterize profiles the paper-scale architectures.
	RunCharacterize = core.RunCharacterize
	// RunScaling sweeps data-parallel shard counts.
	RunScaling = core.RunScaling
	// RunReplay simulates entire paper-scale sessions.
	RunReplay = core.RunReplay
)

// The persisted record kinds.
const (
	KindSession          = core.KindSession
	KindCharacterization = core.KindCharacterization
	KindScaling          = core.KindScaling
	KindReplay           = core.KindReplay
	KindTrace            = core.KindTrace
	KindRunMetrics       = core.KindRunMetrics
	KindTuneConfig       = core.KindTuneConfig
)

// NewRunner validates the plan against the suite's registry and
// returns a Runner for it: unknown benchmark ids, unknown kernels, and
// malformed sweeps are build-time errors, never mid-run panics.
func (s *Suite) NewRunner(p Plan) (*Runner, error) { return core.NewRunner(s.reg, p) }

// SHA fingerprints the registered benchmark roster (ids, tasks, specs)
// — the suite_sha of every persisted result envelope and the header of
// `aibench version`.
func (s *Suite) SHA() string { return s.reg.SHA() }

// Session kinds.
const (
	// EntireSession trains the scaled model until it reaches its quality
	// target.
	EntireSession = core.EntireSession
	// QuasiEntireSession trains a fixed number of epochs.
	QuasiEntireSession = core.QuasiEntireSession
)

// UseKernels selects the named compute kernel ("naive", "blocked",
// "tuned") for every subsequent tensor operation; see the README's
// kernel architecture section. Selection is process-global; the
// AIBENCH_KERNEL environment variable sets the startup default.
func UseKernels(name string) error { return tensor.UseKernels(name) }

// KernelNames lists the registered compute kernels.
func KernelNames() []string { return tensor.KernelNames() }

// ActiveKernel reports which compute kernel tensor ops dispatch to.
func ActiveKernel() string { return tensor.ActiveKernels().Name() }

// EnvTuneFrom is the environment variable the benchmark harness (and
// anything else that cannot take a flag) reads at startup to load a
// persisted tuneconfig stream, mirroring the `-tune-from` CLI flag.
const EnvTuneFrom = "AIBENCH_TUNE_FROM"

// TuneKernels sweeps the tuned kernel's configuration menu on this
// machine — a deterministic timed search per (op, shape-class) — and
// returns the winning TuneConfig. It measures through dedicated hooks
// without touching the active kernel or tuning; persist the result
// with ResultWriter (KindTuneConfig) and activate it with ApplyTuning
// or Plan.TuneFrom.
func TuneKernels(opts TuneOptions) *TuneConfig { return tune.Search(opts) }

// ApplyTuning validates cfg and activates it as the tuned kernel's
// parameter set, recording source (a stream path, typically) as its
// provenance. Tuning, like kernel selection, is process-global and a
// pure scheduling/perf knob: results are bitwise identical under every
// config.
func ApplyTuning(cfg *TuneConfig, source string) error { return tune.Apply(cfg, source) }

// LoadTuning reads the tuneconfig stream at path, selects this
// machine's config (exact GOARCH+GOMAXPROCS match preferred, then
// same-GOARCH, error when the architecture is absent), and applies it.
func LoadTuning(path string) (*TuneConfig, error) {
	cfgs, err := tune.LoadFile(path)
	if err != nil {
		return nil, err
	}
	cfg, err := tune.Select(cfgs, runtime.GOARCH, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, err
	}
	if err := tune.Apply(cfg, path); err != nil {
		return nil, err
	}
	return cfg, nil
}

// TuningSource names where the tuned kernel's active configuration
// came from: "builtin" until a persisted config is applied, then the
// source ApplyTuning/LoadTuning recorded.
func TuningSource() string { return tensor.TuningSource() }

// TuningSummary renders the tuned kernel's active configuration as one
// line (per-shape-class tiles plus the parallel threshold) for version
// banners and run listings.
func TuningSummary() string { return tensor.ActiveTuning().Summary() }

// TitanXP returns the characterization device of Table 4.
func TitanXP() Device { return gpusim.TitanXP() }

// TitanRTX returns the training-session device of Table 4.
func TitanRTX() Device { return gpusim.TitanRTX() }

// AIBench returns the seventeen AIBench component benchmarks in Table 3
// order.
func (s *Suite) AIBench() []*Benchmark { return s.reg.AIBench }

// MLPerf returns the seven MLPerf comparison benchmarks.
func (s *Suite) MLPerf() []*Benchmark { return s.reg.MLPerf }

// All returns every registered benchmark.
func (s *Suite) All() []*Benchmark { return s.reg.All() }

// Benchmark looks up a benchmark by id (e.g. "DC-AI-C9"); nil if absent.
func (s *Suite) Benchmark(id string) *Benchmark { return s.reg.ByID(id) }

// Subset returns the paper's minimum subset: Image Classification,
// Object Detection, and Learning to Rank.
func (s *Suite) Subset() []*Benchmark { return s.reg.Subset() }

// SelectSubset re-derives the subset from the Section 5.4.1 criteria and
// returns the per-benchmark scoring table.
func (s *Suite) SelectSubset() ([]*Benchmark, []SubsetCandidate) { return s.reg.SelectSubset() }

// Costs computes the benchmarking-cost comparison (the 41%/63%/37%
// savings of Section 5.4.2).
func (s *Suite) Costs() CostSummary { return s.reg.Costs() }

// Characterize profiles one benchmark's paper-scale model on the device.
func (s *Suite) Characterize(id string, dev Device) Characterization {
	return s.Benchmark(id).Characterize(dev)
}

// BackendNames lists the registered dist execution backends ("local",
// "process", ...). Plan.Backend selects one by name for sharded
// sessions and scaling sweeps; backends are bitwise-equivalent by
// contract, differing only in where replica compute runs and how big
// the failure domain is.
func BackendNames() []string { return dist.Names() }

// RunDistWorker serves one replica of the process dist backend: it
// answers the parent engine's frame-protocol requests on r — construct
// the workload, compute a phase over this rank's grains, apply reduced
// gradients — writing responses to w until the parent closes the
// stream. The aibench CLI routes its hidden `worker` subcommand here;
// an embedder whose own binary hosts the suite must do the same (the
// process backend re-execs os.Executable with the single argument
// "worker" and the AIBENCH_DIST_WORKER environment variable set).
func RunDistWorker(r io.Reader, w io.Writer) error { return dist.WorkerMain(r, w) }

// DeriveSeed is the deterministic per-benchmark seed derivation suite
// runs apply to their base seed: it depends only on (base, id), never
// on scheduling, so serial and pooled suite runs train each benchmark
// identically.
func DeriveSeed(base int64, id string) int64 { return core.DeriveSeed(base, id) }

// Cluster reproduces Fig 4: t-SNE + k-means over the seventeen
// benchmarks' computation and memory access patterns.
func (s *Suite) Cluster(k int, seed int64) ClusterResult { return s.reg.ClusterBenchmarks(k, seed) }

// Report renders one named table or figure ("table1".."table7",
// "figure1a".."figure7") to w; it reports whether the name was known.
func (s *Suite) Report(name string, w io.Writer, dev Device, seed int64) bool {
	switch name {
	case "table1":
		core.RenderTable1(w)
	case "table2":
		core.RenderTable2(w)
	case "table3":
		s.reg.RenderTable3(w)
	case "table4":
		core.RenderTable4(w)
	case "table5":
		s.reg.RenderTable5(w, seed)
	case "table6":
		s.reg.RenderTable6(w, gpusim.TitanRTX())
	case "table7":
		s.reg.RenderTable7(w, dev)
	case "figure1a":
		s.reg.RenderFigure1a(w, dev)
	case "figure1b", "figure3":
		s.reg.RenderFigure3(w, dev)
	case "figure2":
		s.reg.RenderFigure2(w, dev)
	case "figure4":
		s.reg.RenderFigure4(w, seed)
	case "figure5":
		s.reg.RenderFigure5(w, dev)
	case "figure6":
		s.reg.RenderFigure6(w, dev)
	case "figure7":
		s.reg.RenderFigure7(w, dev)
	default:
		return false
	}
	return true
}

// ResultWriter streams run records to an io.Writer as versioned JSONL
// envelopes ({"v":1,"kind":…,"run":{…},"data":{…}}) that ReadResults
// and `aibench-report -from` decode back. Writes are serialized, so
// its Write method can back a Runner sink directly:
//
//	w := aibench.NewResultWriter(file, runner.Meta())
//	res, err := runner.Run(ctx, w.Write)
type ResultWriter struct {
	w *results.Writer
}

// NewResultWriter wraps w; every envelope carries meta as its run
// identity (Runner.Meta plus a caller-stamped start time).
func NewResultWriter(w io.Writer, meta RunMeta) *ResultWriter {
	return &ResultWriter{w: results.NewWriter(w, meta)}
}

// Write envelopes one record and appends it as a JSONL line.
func (w *ResultWriter) Write(rec Record) error { return w.w.Write(rec) }

// Count returns how many records have been written.
func (w *ResultWriter) Count() int { return w.w.Count() }

// ResultStream is a decoded JSONL result stream.
type ResultStream struct {
	// Records holds every decoded record in file order.
	Records []Record
	// Runs lists the distinct run identities seen, in first-seen order.
	Runs []RunMeta
	// Skipped counts records dropped for carrying an unknown envelope
	// version or record kind — forward compatibility, not an error.
	Skipped int
	// Truncated reports that the stream's final line was undecodable
	// after at least one record decoded cleanly — the shape a dropped
	// client leaves when a server response is cut mid-envelope. The
	// partial tail is discarded; every earlier record is kept.
	Truncated bool
}

// ReadResults decodes a JSONL result stream: enveloped records of a
// known version and kind, with unknown versions/kinds skipped and
// pre-envelope bare SessionResult lines still accepted. Feed
// ResultStream.Records to RenderRunReport to rebuild reports without
// re-running anything.
func ReadResults(r io.Reader) (*ResultStream, error) {
	s, err := results.Read(r)
	if err != nil {
		return nil, err
	}
	return &ResultStream{Records: s.Records, Runs: s.Runs, Skipped: s.Skipped, Truncated: s.Truncated}, nil
}

// RunReportNames lists the run reports rebuildable from persisted
// records ("sessions", "characterizations", "scaling", "replays").
func RunReportNames() []string { return core.RunReportNames() }

// RunReportKind maps a run-report name to the record kind it renders;
// ok is false for unknown names.
func RunReportKind(name string) (RecordKind, bool) { return core.RunReportKind(name) }

// RenderRunReport renders one named run report ("sessions",
// "characterizations", "scaling", "replays") from a record stream,
// restoring canonical registry order first; it reports whether the
// name was known. The live CLI and `aibench-report -from` both render
// through this function, so a report rebuilt from persisted JSONL is
// byte-identical to its live-run output.
func RenderRunReport(name string, w io.Writer, recs []Record) bool {
	return core.RenderRunRecords(name, w, recs)
}

// ReportNames lists every renderable table/figure name.
func ReportNames() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"figure1a", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
	}
}
