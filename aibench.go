// Package aibench is the public API of the AIBench Training
// reproduction: a balanced industry-standard AI training benchmark
// suite (Tang et al., ISPASS 2021) implemented as a pure-Go library.
//
// The suite contains the seventeen AIBench component benchmarks
// (DC-AI-C1..C17) and the seven MLPerf Training benchmarks the paper
// compares against. Each benchmark couples a scaled, executable model —
// trained end-to-end through the library's own tensor/autograd/NN
// stack on synthetic datasets — with the paper-scale architecture used
// for analytic characterization and GPU-simulator profiling.
//
// Typical use:
//
//	suite := aibench.NewSuite()
//	res := suite.Benchmark("DC-AI-C1").RunScaledSession(aibench.SessionConfig{
//	    Kind: aibench.EntireSession, Seed: 42,
//	})
//	fmt.Printf("reached %v in %d epochs\n", res.ReachedGoal, res.Epochs)
//
// The report renderers regenerate every table and figure of the
// paper's evaluation section; see cmd/aibench-report.
package aibench

import (
	"context"
	"io"

	"aibench/internal/core"
	"aibench/internal/gpusim"
	"aibench/internal/tensor"
)

// Suite is the top-level handle: the benchmark registry plus the
// methodology operations (sessions, subset selection, characterization,
// cost accounting, reporting).
type Suite struct {
	reg *core.Registry
}

// NewSuite builds the suite with all 24 benchmarks registered.
func NewSuite() *Suite { return &Suite{reg: core.NewRegistry()} }

// Re-exported core types.
type (
	// Benchmark is one component benchmark (metadata + scaled workload).
	Benchmark = core.Benchmark
	// SessionConfig configures a scaled training session.
	SessionConfig = core.SessionConfig
	// SessionResult reports a scaled training session.
	SessionResult = core.SessionResult
	// Characterization is one benchmark's workload characterization.
	Characterization = core.Characterization
	// ClusterResult is the Fig 4 clustering outcome.
	ClusterResult = core.ClusterResult
	// CostSummary aggregates the benchmarking-cost comparison.
	CostSummary = core.CostSummary
	// VariationResult is one Table 5 run-to-run variation row.
	VariationResult = core.VariationResult
	// SubsetCandidate is one row of the subset-selection scoring.
	SubsetCandidate = core.SubsetCandidate
	// ScalingRow is one benchmark's data-parallel scaling measurement.
	ScalingRow = core.ScalingRow
	// ScalingPoint is one shard count of a scaling measurement.
	ScalingPoint = core.ScalingPoint
	// Device describes a simulated GPU.
	Device = gpusim.Device
)

// Session kinds.
const (
	// EntireSession trains the scaled model until it reaches its quality
	// target.
	EntireSession = core.EntireSession
	// QuasiEntireSession trains a fixed number of epochs.
	QuasiEntireSession = core.QuasiEntireSession
)

// UseKernels selects the named compute kernel ("naive", "blocked") for
// every subsequent tensor operation; see the README's kernel
// architecture section. Selection is process-global; the AIBENCH_KERNEL
// environment variable sets the startup default.
func UseKernels(name string) error { return tensor.UseKernels(name) }

// KernelNames lists the registered compute kernels.
func KernelNames() []string { return tensor.KernelNames() }

// ActiveKernel reports which compute kernel tensor ops dispatch to.
func ActiveKernel() string { return tensor.ActiveKernels().Name() }

// TitanXP returns the characterization device of Table 4.
func TitanXP() Device { return gpusim.TitanXP() }

// TitanRTX returns the training-session device of Table 4.
func TitanRTX() Device { return gpusim.TitanRTX() }

// AIBench returns the seventeen AIBench component benchmarks in Table 3
// order.
func (s *Suite) AIBench() []*Benchmark { return s.reg.AIBench }

// MLPerf returns the seven MLPerf comparison benchmarks.
func (s *Suite) MLPerf() []*Benchmark { return s.reg.MLPerf }

// All returns every registered benchmark.
func (s *Suite) All() []*Benchmark { return s.reg.All() }

// Benchmark looks up a benchmark by id (e.g. "DC-AI-C9"); nil if absent.
func (s *Suite) Benchmark(id string) *Benchmark { return s.reg.ByID(id) }

// Subset returns the paper's minimum subset: Image Classification,
// Object Detection, and Learning to Rank.
func (s *Suite) Subset() []*Benchmark { return s.reg.Subset() }

// SelectSubset re-derives the subset from the Section 5.4.1 criteria and
// returns the per-benchmark scoring table.
func (s *Suite) SelectSubset() ([]*Benchmark, []SubsetCandidate) { return s.reg.SelectSubset() }

// Costs computes the benchmarking-cost comparison (the 41%/63%/37%
// savings of Section 5.4.2).
func (s *Suite) Costs() CostSummary { return s.reg.Costs() }

// Characterize profiles one benchmark's paper-scale model on the device.
func (s *Suite) Characterize(id string, dev Device) Characterization {
	return s.Benchmark(id).Characterize(dev)
}

// CharacterizeAll profiles a benchmark list on the device.
func CharacterizeAll(bs []*Benchmark, dev Device) []Characterization {
	return core.CharacterizeSuite(bs, dev)
}

// RunAllScaled executes a scaled training session for all 24 benchmarks
// across a bounded worker pool (workers <= 0 means GOMAXPROCS) and
// returns results in registry order (AIBench C1..C17, then MLPerf).
// Per-benchmark seeds are derived deterministically from cfg.Seed and
// the benchmark id, so results are bitwise identical for any worker
// count; cfg.Log, if set, receives safely interleaved progress lines
// from the concurrent sessions.
func (s *Suite) RunAllScaled(cfg SessionConfig, workers int) []SessionResult {
	return core.RunSuiteScaled(s.reg.All(), cfg, workers)
}

// RunAllScaledStream is RunAllScaled with completion streaming and
// cancellation: sink, when non-nil, receives each SessionResult as its
// session completes (calls are serialized), so long runs can persist
// partial results; once ctx is cancelled or a session panics, no new
// session launches. Never-launched slots are zero-valued (empty ID) in
// the returned slice.
func (s *Suite) RunAllScaledStream(ctx context.Context, cfg SessionConfig, workers int, sink func(SessionResult)) []SessionResult {
	return core.RunSuiteScaledStream(ctx, s.reg.All(), cfg, workers, sink)
}

// ScalingReport measures within-session data-parallel scaling (epoch
// wall-clock and speedup versus 1 shard) for every shardable benchmark
// in bs at each shard count. Pass s.All() to sweep the whole suite.
func (s *Suite) ScalingReport(bs []*Benchmark, shards []int, epochs int, seed int64) []ScalingRow {
	return core.ScalingReport(bs, shards, epochs, seed)
}

// CharacterizeAll profiles every registered benchmark on the device
// across a bounded worker pool (workers <= 0 means GOMAXPROCS),
// returning results in registry order.
func (s *Suite) CharacterizeAll(dev Device, workers int) []Characterization {
	return core.CharacterizeSuiteParallel(s.reg.All(), dev, workers)
}

// DeriveSeed is the deterministic per-benchmark seed derivation
// RunAllScaled applies to its base seed: it depends only on (base, id),
// never on scheduling, so serial and pooled suite runs train each
// benchmark identically.
func DeriveSeed(base int64, id string) int64 { return core.DeriveSeed(base, id) }

// Cluster reproduces Fig 4: t-SNE + k-means over the seventeen
// benchmarks' computation and memory access patterns.
func (s *Suite) Cluster(k int, seed int64) ClusterResult { return s.reg.ClusterBenchmarks(k, seed) }

// Report renders one named table or figure ("table1".."table7",
// "figure1a".."figure7") to w; it reports whether the name was known.
func (s *Suite) Report(name string, w io.Writer, dev Device, seed int64) bool {
	switch name {
	case "table1":
		core.RenderTable1(w)
	case "table2":
		core.RenderTable2(w)
	case "table3":
		s.reg.RenderTable3(w)
	case "table4":
		core.RenderTable4(w)
	case "table5":
		s.reg.RenderTable5(w, seed)
	case "table6":
		s.reg.RenderTable6(w, gpusim.TitanRTX())
	case "table7":
		s.reg.RenderTable7(w, dev)
	case "figure1a":
		s.reg.RenderFigure1a(w, dev)
	case "figure1b", "figure3":
		s.reg.RenderFigure3(w, dev)
	case "figure2":
		s.reg.RenderFigure2(w, dev)
	case "figure4":
		s.reg.RenderFigure4(w, seed)
	case "figure5":
		s.reg.RenderFigure5(w, dev)
	case "figure6":
		s.reg.RenderFigure6(w, dev)
	case "figure7":
		s.reg.RenderFigure7(w, dev)
	default:
		return false
	}
	return true
}

// ReportNames lists every renderable table/figure name.
func ReportNames() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"figure1a", "figure2", "figure3", "figure4", "figure5", "figure6", "figure7",
	}
}
